"""Data series for every table and figure in the paper's evaluation.

Each ``figureN``/``tableN`` function declares the required simulation
grid and hands it to the experiment engine (:mod:`repro.exp`), which
shares generated workloads and sequential baselines across systems,
optionally fans points out over worker processes (``jobs``), and
memoizes per-point results on disk (``cache``).  The functions return
plain data (dicts) that the benchmark harness prints.

The sizes are controlled by ``scale`` (per-thread work multiplier) and
``ncores``; the defaults match the paper's 32-core configuration with
inputs scaled to finish in minutes of wall time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.exp import engine as exp_engine
from repro.exp.cache import ResultCache
from repro.exp.engine import ProgressFn
from repro.sim.config import MachineConfig
from repro.sim.runner import WorkloadResult
from repro.workloads.registry import (
    ALL_VARIANTS,
    FIGURE1_WORKLOADS,
    TABLE3_WORKLOADS,
)

#: the three systems compared throughout the evaluation (Figures 9/10)
EVAL_SYSTEMS = ("eager", "lazy-vb", "retcon")


def run_matrix(
    workloads: Sequence[str],
    systems: Sequence[str],
    ncores: int = 32,
    seed: int = 1,
    scale: float = 1.0,
    config: MachineConfig | None = None,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    refresh: bool = False,
    progress: ProgressFn | None = None,
) -> dict[tuple[str, str], WorkloadResult]:
    """Run every (workload, system) pair via the experiment engine.

    ``jobs=1`` (the default) keeps library calls serial and
    dependency-free; pass ``jobs=None`` to use every core (or
    ``$REPRO_JOBS``), as the CLI does.
    """
    return exp_engine.run_matrix(
        workloads,
        systems,
        ncores=ncores,
        seed=seed,
        scale=scale,
        config=config,
        jobs=jobs,
        cache=cache,
        refresh=refresh,
        progress=progress,
    )


# ---------------------------------------------------------------------------
# Figure 1: scalability of the aggressive eager HTM on the 8 base workloads
# ---------------------------------------------------------------------------
def figure1(
    ncores: int = 32,
    seed: int = 1,
    scale: float = 1.0,
    **engine_opts,
) -> dict[str, float]:
    matrix = run_matrix(
        FIGURE1_WORKLOADS, ("eager",), ncores=ncores, seed=seed,
        scale=scale, **engine_opts,
    )
    return {
        name: matrix[(name, "eager")].speedup
        for name in FIGURE1_WORKLOADS
    }


# ---------------------------------------------------------------------------
# Figure 2: the qualitative comparison on the double-increment counter
# ---------------------------------------------------------------------------
@dataclass
class Figure2Point:
    system: str
    cycles: int
    commits: int
    aborts: int
    stall_events: int


FIGURE2_SYSTEMS = ("retcon", "datm", "eager-abort", "eager-stall", "lazy")


def figure2(
    txns_per_core: int = 4, increments: int = 2
) -> dict[str, Figure2Point]:
    """Two cores repeatedly double-incrementing a shared counter."""
    from repro.isa.program import Assembler
    from repro.isa.registers import R1
    from repro.mem.memory import MainMemory
    from repro.sim.machine import Machine
    from repro.sim.script import ThreadScript

    results = {}
    for system in FIGURE2_SYSTEMS:
        memory = MainMemory()
        addr = 4096
        scripts = []
        for _core in range(2):
            script = ThreadScript()
            for _ in range(txns_per_core):
                asm = Assembler()
                for _ in range(increments):
                    asm.load(R1, addr)
                    asm.addi(R1, R1, 1)
                    asm.store(R1, addr)
                    asm.nop(5)
                script.add_txn(asm.build())
                script.add_work(3)
            scripts.append(script)
        machine = Machine(
            MachineConfig(ncores=2), system, scripts, memory
        )
        run = machine.run()
        expected = 2 * txns_per_core * increments
        actual = memory.read(addr)
        if actual != expected:
            raise AssertionError(
                f"{system}: counter {actual} != {expected}"
            )
        results[system] = Figure2Point(
            system=system,
            cycles=run.cycles,
            commits=run.commits,
            aborts=run.aborts,
            stall_events=sum(
                c.stall_events for c in run.stats.cores
            ),
        )
    return results


# ---------------------------------------------------------------------------
# Figure 3 / Figure 4: eager baseline across all 14 variants
# ---------------------------------------------------------------------------
def figure3(
    ncores: int = 32,
    seed: int = 1,
    scale: float = 1.0,
    matrix: Mapping[tuple[str, str], WorkloadResult] | None = None,
    **engine_opts,
) -> dict[str, float]:
    matrix = matrix or run_matrix(
        ALL_VARIANTS, ("eager",), ncores=ncores, seed=seed, scale=scale,
        **engine_opts,
    )
    return {name: matrix[(name, "eager")].speedup for name in ALL_VARIANTS}


def figure4(
    ncores: int = 32,
    seed: int = 1,
    scale: float = 1.0,
    matrix: Mapping[tuple[str, str], WorkloadResult] | None = None,
    **engine_opts,
) -> dict[str, dict[str, float]]:
    matrix = matrix or run_matrix(
        ALL_VARIANTS, ("eager",), ncores=ncores, seed=seed, scale=scale,
        **engine_opts,
    )
    return {
        name: matrix[(name, "eager")].breakdown for name in ALL_VARIANTS
    }


# ---------------------------------------------------------------------------
# Figure 9 / Figure 10 / Table 3: the full three-system comparison
# ---------------------------------------------------------------------------
def figure9(
    ncores: int = 32,
    seed: int = 1,
    scale: float = 1.0,
    workloads: Sequence[str] = ALL_VARIANTS,
    matrix: Mapping[tuple[str, str], WorkloadResult] | None = None,
    **engine_opts,
) -> dict[str, dict[str, float]]:
    matrix = matrix or run_matrix(
        workloads, EVAL_SYSTEMS, ncores=ncores, seed=seed, scale=scale,
        **engine_opts,
    )
    return {
        name: {
            system: matrix[(name, system)].speedup
            for system in EVAL_SYSTEMS
        }
        for name in workloads
    }


def figure10(
    ncores: int = 32,
    seed: int = 1,
    scale: float = 1.0,
    workloads: Sequence[str] = ALL_VARIANTS,
    matrix: Mapping[tuple[str, str], WorkloadResult] | None = None,
    **engine_opts,
) -> dict[str, dict[str, dict[str, float]]]:
    """Breakdowns plus runtimes normalized to the eager configuration."""
    matrix = matrix or run_matrix(
        workloads, EVAL_SYSTEMS, ncores=ncores, seed=seed, scale=scale,
        **engine_opts,
    )
    out: dict[str, dict[str, dict[str, float]]] = {}
    for name in workloads:
        eager_cycles = matrix[(name, "eager")].cycles or 1
        out[name] = {
            system: {
                "breakdown": matrix[(name, system)].breakdown,
                "normalized_runtime": (
                    matrix[(name, system)].cycles / eager_cycles
                ),
            }
            for system in EVAL_SYSTEMS
        }
    return out


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------
def table1(config: MachineConfig | None = None) -> list[tuple[str, str]]:
    return (config or MachineConfig()).rows()


def table2() -> list[tuple[str, str, str]]:
    from repro.workloads.registry import WORKLOADS

    return [
        (w.spec.name, w.spec.description, w.spec.parameters)
        for name, w in sorted(WORKLOADS.items())
    ]


def table3(
    ncores: int = 32,
    seed: int = 1,
    scale: float = 1.0,
    workloads: Sequence[str] = TABLE3_WORKLOADS,
    matrix: Mapping[tuple[str, str], WorkloadResult] | None = None,
    **engine_opts,
) -> dict[str, dict[str, object]]:
    """RETCON structure utilization (avg and max per transaction).

    Includes ``bayes`` by default (the paper's Table 3 does), unless a
    precomputed matrix restricts the rows.
    """
    if matrix is not None:
        workloads = [
            name
            for name in workloads
            if (name, "retcon") in matrix
        ]
    else:
        matrix = run_matrix(
            workloads, ("retcon",), ncores=ncores, seed=seed,
            scale=scale, **engine_opts,
        )
    out = {}
    for name in workloads:
        result = matrix[(name, "retcon")]
        row: dict[str, object] = dict(result.table3)
        row["commit_stall_percent"] = result.commit_stall_percent
        out[name] = row
    return out


# ---------------------------------------------------------------------------
# Hybrid TM: instrumentation overhead vs. concurrency lost (HyTM tradeoff)
# ---------------------------------------------------------------------------
HYBRID_WORKLOADS = ("python_opt", "genome-sz", "kmeans")
HYBRID_BUDGETS = (0, 1, 2, 4, 8)


def figure_hybrid(
    ncores: int = 32,
    seed: int = 1,
    scale: float = 1.0,
    workloads: Sequence[str] = HYBRID_WORKLOADS,
    budgets: Sequence[int] = HYBRID_BUDGETS,
    backend: str = "hybrid-retcon",
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    refresh: bool = False,
    progress: ProgressFn | None = None,
) -> dict[str, dict[str, dict[str, float]]]:
    """The headline HyTM tradeoff (after Brown & Ravi): sweeping the
    HTM retry budget trades software instrumentation overhead against
    concurrency lost to hardware/software synchronization.

    Runs *backend* at each retry budget, plus the pure hardware
    (``retcon``) and pure software (``stm``) endpoints, and reports
    per point: speedup over sequential, instrumentation instructions
    per commit, the STM fallback rate, and aborts attributed to
    HTM/STM synchronization (subscription dooms and owner vetoes).

    Returns ``{workload: {column: {metric: value}}}`` where columns
    are ``"htm"``, ``"rb=<n>"`` ... , ``"stm"``.
    """
    from repro.exp.engine import run_points
    from repro.exp.spec import Point

    columns: list[tuple[str, str, Point]] = []
    for name in workloads:
        columns.append(
            (name, "htm", Point(name, "retcon", ncores, seed, scale))
        )
        for budget in budgets:
            columns.append(
                (
                    name,
                    f"rb={budget}",
                    Point(
                        name, backend, ncores, seed, scale,
                        retry_budget=budget,
                    ),
                )
            )
        columns.append(
            (name, "stm", Point(name, "stm", ncores, seed, scale))
        )
    results = run_points(
        [point for _n, _c, point in columns],
        jobs=jobs, cache=cache, refresh=refresh, progress=progress,
    )
    out: dict[str, dict[str, dict[str, float]]] = {}
    for name, column, point in columns:
        result = results[point]
        commits = result.commits or 1
        stm = result.stm
        out.setdefault(name, {})[column] = {
            "speedup": result.speedup,
            "barrier_instrs_per_commit": (
                stm.get("barrier_instrs", 0) / commits
            ),
            "fallback_rate": stm.get("fallback_rate", 0.0),
            "subscription_aborts": stm.get("subscription_aborts", 0),
            "aborts": result.aborts,
            "cycles": result.cycles,
        }
    return out


# ---------------------------------------------------------------------------
# Capacity frontier: throughput vs. speculative-set size
# ---------------------------------------------------------------------------
CAPACITY_WORKLOADS = ("python_opt", "genome-sz", "kmeans")
CAPACITY_STEPS: tuple[int | str, ...] = (1, 2, 4, 8, "unlimited")
CAPACITY_BACKENDS = ("eager", "retcon", "hybrid-retcon")


def figure_capacity(
    ncores: int = 32,
    seed: int = 1,
    scale: float = 1.0,
    workloads: Sequence[str] = CAPACITY_WORKLOADS,
    steps: Sequence[int | str] = CAPACITY_STEPS,
    backends: Sequence[str] = CAPACITY_BACKENDS,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    refresh: bool = False,
    progress: ProgressFn | None = None,
) -> dict[str, dict[str, dict[str, dict[str, float]]]]:
    """The capacity frontier (after Kafousis's limited-set HTM study):
    throughput vs. speculative read/write-set size, per backend.

    Each backend runs with ``read_set_entries = write_set_entries =
    step`` for every step; the pure software endpoint (``stm``) runs
    once per workload since its sets live in software and no bound
    applies.  Where RETCON's curve flattens before the eager
    baseline's is where repair substitutes for buffer area; where the
    hybrid overtakes both is where escalation beats bigger buffers.

    Returns ``{workload: {backend: {step: {metric: value}}}}`` with
    step keys ``"1"``, ``"2"``, ... , ``"unlimited"``.
    """
    from repro.exp.engine import run_points
    from repro.exp.spec import Point

    columns: list[tuple[str, str, str, Point]] = []
    for name in workloads:
        for backend in backends:
            for step in steps:
                bound = None if step == "unlimited" else step
                columns.append(
                    (
                        name,
                        backend,
                        str(step),
                        Point(
                            name, backend, ncores, seed, scale,
                            read_set_entries=(
                                "unlimited" if bound is None else bound
                            ),
                            write_set_entries=(
                                "unlimited" if bound is None else bound
                            ),
                        ),
                    )
                )
        columns.append(
            (name, "stm", "unlimited",
             Point(name, "stm", ncores, seed, scale))
        )
    results = run_points(
        [point for _n, _b, _s, point in columns],
        jobs=jobs, cache=cache, refresh=refresh, progress=progress,
    )
    out: dict[str, dict[str, dict[str, dict[str, float]]]] = {}
    for name, backend, step, point in columns:
        result = results[point]
        out.setdefault(name, {}).setdefault(backend, {})[step] = {
            "speedup": result.speedup,
            "capacity_aborts": result.aborts_by_reason.get(
                "capacity", 0
            ),
            "aborts": result.aborts,
            "fallback_rate": result.stm.get("fallback_rate", 0.0),
            "cycles": result.cycles,
        }
    return out


# ---------------------------------------------------------------------------
# Service traffic: commit/repair/abort rates + tail latency per backend
# ---------------------------------------------------------------------------
SERVICE_BACKENDS = ("eager", "retcon", "hybrid-retcon")


def figure_service(
    ncores: int = 32,
    seed: int = 1,
    scale: float = 1.0,
    workloads: Sequence[str] | None = None,
    backends: Sequence[str] = SERVICE_BACKENDS,
    skew: float | None = None,
    burst: str | None = None,
    check: bool = False,
    cache: ResultCache | None = None,
    refresh: bool = False,
    progress: ProgressFn | None = None,
) -> dict[str, dict[str, dict[str, float]]]:
    """The service-traffic sweep: every service workload on every
    backend, with traced runs so transaction-latency histograms and
    the repair counter ride along.

    Reports per (workload, backend): speedup over sequential, commit
    count, abort rate, **repair rate** (commits that lost blocks and
    committed anyway via symbolic repair — RETCON's work product on
    the hot counters), STM fallback rate, and p50/p99 transaction
    latency in cycles from the ``txn.duration_cycles`` histogram.

    ``skew``/``burst`` override the traffic model for every workload
    in the sweep (cache-key fields, so the overridden sweep memoizes
    separately).  Returns ``{workload: {backend: {metric: value}}}``.
    """
    import time
    from dataclasses import replace

    from repro.exp.engine import run_point_with_trace
    from repro.exp.spec import Point
    from repro.workloads.service import SERVICE_WORKLOADS

    if workloads is None:
        workloads = SERVICE_WORKLOADS
    out: dict[str, dict[str, dict[str, float]]] = {}
    done, total = 0, len(workloads) * len(backends)
    for name in workloads:
        for backend in backends:
            point = Point(
                name, backend, ncores, seed, scale,
                check=check, skew=skew, burst=burst,
            )
            # A trace-cache hit needs both the result entry and the
            # trace artifact (see run_point_with_trace); probe with
            # the same promoted key so progress reports honestly.
            traced = replace(point, obs="trace")
            hit = (
                cache is not None and not refresh
                and cache.get(traced) is not None
                and cache.get_artifact(traced, "trace") is not None
            )
            start = time.perf_counter()
            result, _events, metrics = run_point_with_trace(
                point, cache=cache, refresh=refresh
            )
            done += 1
            if progress:
                progress(
                    done, total, point,
                    "cached" if hit else "ran",
                    0.0 if hit else time.perf_counter() - start,
                )
            if check and not result.check_ok:
                raise AssertionError(
                    f"{name}/{backend}: correctness checks failed: "
                    f"{result.failed_invariants() or result.oracle_violations}"
                )
            commits = result.commits or 1
            attempts = result.commits + result.aborts
            latency = metrics.get("txn.duration_cycles", {}) or {}
            out.setdefault(name, {})[backend] = {
                "speedup": result.speedup,
                "commits": result.commits,
                "aborts": result.aborts,
                "abort_rate": result.aborts / attempts if attempts else 0.0,
                "repaired_commits": metrics.get("txn.repaired_commits", 0),
                "repair_rate": (
                    metrics.get("txn.repaired_commits", 0) / commits
                ),
                "fallback_rate": result.stm.get("fallback_rate", 0.0),
                "p50_cycles": latency.get("p50", 0),
                "p99_cycles": latency.get("p99", 0),
                "mean_cycles": latency.get("mean", 0.0),
            }
    return out


def format_service_traffic(
    data: Mapping[str, Mapping[str, Mapping[str, float]]],
) -> str:
    """Render :func:`figure_service` output as markdown tables."""
    lines: list[str] = []
    for name, backends in data.items():
        lines.append(f"### {name}")
        lines.append("")
        lines.append(
            "| backend | speedup | commits | abort rate | "
            "repair rate | stm fallback | p50 (cyc) | p99 (cyc) |"
        )
        lines.append("|---|---|---|---|---|---|---|---|")
        for backend, row in backends.items():
            lines.append(
                f"| {backend} | {row['speedup']:.2f}x "
                f"| {int(row['commits'])} "
                f"| {row['abort_rate'] * 100:.0f}% "
                f"| {row['repair_rate'] * 100:.0f}% "
                f"| {row['fallback_rate'] * 100:.0f}% "
                f"| {int(row['p50_cycles'])} "
                f"| {int(row['p99_cycles'])} |"
            )
        lines.append("")
    return "\n".join(lines)


def format_capacity_frontier(
    data: Mapping[str, Mapping[str, Mapping[str, Mapping[str, float]]]],
) -> str:
    """Render :func:`figure_capacity` output as markdown tables."""
    lines: list[str] = []
    for name, backends in data.items():
        steps: list[str] = []
        for rows in backends.values():
            for step in rows:
                if step not in steps:
                    steps.append(step)
        lines.append(f"### {name}")
        lines.append("")
        lines.append(
            "| backend | "
            + " | ".join(f"sets={step}" for step in steps)
            + " |"
        )
        lines.append("|---" * (len(steps) + 1) + "|")
        for backend, rows in backends.items():
            cells = []
            for step in steps:
                row = rows.get(step)
                if row is None:
                    cells.append("—")
                    continue
                cell = f"{row['speedup']:.2f}x"
                cap = int(row["capacity_aborts"])
                if cap:
                    cell += f" ({cap} cap)"
                if row["fallback_rate"]:
                    cell += f" [{row['fallback_rate'] * 100:.0f}% stm]"
                cells.append(cell)
            lines.append(
                f"| {backend} | " + " | ".join(cells) + " |"
            )
        lines.append("")
    return "\n".join(lines)


def format_hybrid_tradeoff(
    data: Mapping[str, Mapping[str, Mapping[str, float]]],
) -> str:
    """Render :func:`figure_hybrid` output as a markdown table set."""
    lines: list[str] = []
    for name, columns in data.items():
        lines.append(f"### {name}")
        lines.append("")
        lines.append(
            "| point | speedup | barrier instrs/commit | "
            "fallback rate | subscription aborts | total aborts |"
        )
        lines.append("|---|---|---|---|---|---|")
        for column, row in columns.items():
            lines.append(
                f"| {column} | {row['speedup']:.2f}x "
                f"| {row['barrier_instrs_per_commit']:.1f} "
                f"| {row['fallback_rate'] * 100:.0f}% "
                f"| {int(row['subscription_aborts'])} "
                f"| {int(row['aborts'])} |"
            )
        lines.append("")
    return "\n".join(lines)
