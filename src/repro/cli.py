"""Command-line interface.

Examples::

    python -m repro list
    python -m repro run genome-sz --system retcon --cores 16
    python -m repro compare python_opt --cores 32 --scale 0.5
    python -m repro figure 9 --scale 0.3 --jobs 4
    python -m repro table 3
    python -m repro experiments --scale 1.0 --jobs 8
    python -m repro sweep python_opt --jobs 4
    python -m repro sweep --smoke --jobs 2
    python -m repro run python_opt --check --trace=50
    python -m repro trace export figure2 --system retcon
    python -m repro trace export python_opt --cores 8 --scale 0.2
    python -m repro timeline python_opt --cores 4 --scale 0.1
    python -m repro metrics python_opt --cores 4 --scale 0.1
    python -m repro check --smoke --jobs 2
    python -m repro profile -o BENCH_pr3.json
    python -m repro fuzz --smoke --jobs 2
    python -m repro fuzz --minutes 10 --backends eager lazy-vb retcon datm

Simulation commands accept ``--jobs N`` (default ``$REPRO_JOBS`` or
all cores) to fan independent points out over worker processes, and
memoize per-point results under ``.repro-cache/`` — use ``--no-cache``
to bypass the cache or ``--refresh`` to re-simulate and overwrite it.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.analysis import figures as fig
from repro.analysis.report import (
    bar_chart,
    breakdown_chart,
    format_speedup_matrix,
    format_table,
)
from repro.exp import (
    Point,
    ResultCache,
    run_points,
    smoke_spec,
    stderr_progress,
)
from repro.workloads.registry import ALL_VARIANTS, WORKLOADS


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: $REPRO_JOBS or all cores)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk result cache",
    )
    parser.add_argument(
        "--refresh", action="store_true",
        help="ignore cached results but store fresh ones",
    )


def _engine_opts(args) -> dict:
    return dict(
        jobs=args.jobs,
        cache=None if args.no_cache else ResultCache(),
        refresh=args.refresh,
        progress=stderr_progress,
    )


def _capacity(value: str):
    """Parse a capacity flag: an entry count or 'unlimited'."""
    if value == "unlimited":
        return value
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an entry count or 'unlimited', got {value!r}"
        )
    if n < 1:
        raise argparse.ArgumentTypeError(
            f"capacity must be >= 1 (use 'unlimited' to unbound): {n}"
        )
    return n


#: (flag, Point field) pairs for the per-structure capacity knobs
_CAPACITY_ARGS = (
    ("--read-set", "read_set_entries", "speculative read-set blocks"),
    ("--write-set", "write_set_entries", "speculative write-set blocks"),
    ("--ivb", "ivb_entries", "initial value buffer entries"),
    ("--constraint-buffer", "constraint_entries",
     "constraint buffer entries"),
    ("--ssb", "ssb_entries", "symbolic store buffer entries"),
)


def _add_capacity_args(parser: argparse.ArgumentParser) -> None:
    for flag, dest, what in _CAPACITY_ARGS:
        parser.add_argument(
            flag, dest=dest, type=_capacity, default=None,
            metavar="N|unlimited",
            help=f"bound the {what} (default: the machine config's "
                 "value)",
        )


def _capacity_overrides(args) -> dict:
    """Point/sweep keyword overrides from the capacity flags."""
    return {
        dest: value
        for _flag, dest, _what in _CAPACITY_ARGS
        if (value := getattr(args, dest, None)) is not None
    }


def _add_traffic_args(parser: argparse.ArgumentParser) -> None:
    from repro.workloads.service.traffic import ARRIVAL_PROFILES

    parser.add_argument(
        "--skew", type=float, default=None, metavar="S",
        help="Zipf popularity exponent for the service workloads "
             "(default: the workload's traffic spec)",
    )
    parser.add_argument(
        "--burst", default=None, choices=sorted(ARRIVAL_PROFILES),
        help="arrival profile for the service workloads "
             "(default: the workload's traffic spec)",
    )


def _traffic_overrides(args) -> dict:
    """Point/sweep keyword overrides from the traffic flags."""
    return {
        name: value
        for name in ("skew", "burst")
        if (value := getattr(args, name, None)) is not None
    }


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cores", type=int, default=32)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--retry-budget", type=int, default=None, metavar="N",
        help="HTM attempts before a hybrid backend escalates to STM "
             "(default: the machine config's value)",
    )
    _add_capacity_args(parser)
    _add_traffic_args(parser)
    _add_engine_args(parser)


def _cmd_list(_args) -> int:
    print("Workloads (Table 2):")
    for name in ALL_VARIANTS:
        print(f"  {name:18s} {WORKLOADS[name].spec.description}")
    print("\nTM systems: eager, eager-abort, eager-stall, lazy, "
          "lazy-vb, datm, retcon, retcon-fwd, stm, hybrid-retcon, "
          "hybrid-eager, hybrid-lazy-vb, progressive")
    from repro.workloads.service import SERVICE_WORKLOADS

    print("\nService workloads (repro figure service):")
    for name in SERVICE_WORKLOADS:
        print(f"  {name:18s} {WORKLOADS[name].spec.description}")
    from repro.fuzz.gen import FUZZ_PROFILES

    print(
        "\nFuzz profiles (repro fuzz, also runnable as workloads): "
        + ", ".join(FUZZ_PROFILES)
    )
    return 0


def _print_result(result) -> None:
    print(f"workload:  {result.workload}")
    print(f"system:    {result.system}")
    print(f"cores:     {result.ncores}")
    print(f"cycles:    {result.cycles} (sequential: {result.seq_cycles})")
    print(f"speedup:   {result.speedup:.2f}x")
    print(f"commits:   {result.commits}")
    print(f"aborts:    {result.aborts} {result.aborts_by_reason}")
    breakdown = ", ".join(
        f"{k}={v:.1%}" for k, v in result.breakdown.items()
    )
    print(f"breakdown: {breakdown}")
    if result.commit_stall_percent:
        print(f"pre-commit repair: {result.commit_stall_percent:.1f}% "
              "of txn lifetime")
    if len(result.by_label) > 1:
        for label, (commits, aborts) in sorted(result.by_label.items()):
            print(f"  txn[{label}]: {commits} commits, "
                  f"{aborts} aborted attempts")
    for inv in result.invariants:
        status = "ok" if inv.ok else "FAILED"
        print(f"invariant [{inv.name}]: {status} — {inv.detail}")
    if result.oracle_checked:
        status = "ok" if result.oracle_ok else "FAILED"
        print(f"oracle: {status} — {result.oracle_commits} commits "
              f"replayed, {len(result.oracle_violations)} violations")
        for violation in result.oracle_violations[:10]:
            print(f"  [{violation['kind']}] core {violation['core']} "
                  f"txn={violation['txn_label']} {violation['detail']}")
    if result.golden is not None:
        status = "ok" if result.golden_ok else "FAILED"
        print(f"golden diff: {status} — "
              f"{result.golden['blocks_differing']}/"
              f"{result.golden['blocks_compared']} blocks differ "
              f"({result.golden['bytes_differing']} bytes); "
              f"golden failures={result.golden['golden_failures']} "
              f"parallel failures={result.golden['parallel_failures']}")


def _cmd_run(args) -> int:
    if args.trace is not None:
        return _run_traced(args)
    point = Point(
        workload=args.workload,
        system=args.system,
        ncores=args.cores,
        seed=args.seed,
        scale=args.scale,
        check=args.check,
        retry_budget=args.retry_budget,
        **_capacity_overrides(args),
        **_traffic_overrides(args),
    )
    result = run_points([point], **_engine_opts(args))[point]
    _print_result(result)
    return 0 if result.check_ok else 1


def _run_traced(args) -> int:
    """``repro run --trace[=N]``: simulate with an event stream attached.

    A traced run is a distinct cache point (``obs="trace"``) whose
    event payload is persisted as an artifact next to the result, so a
    warm cache replays the recorded trace instead of re-simulating —
    and an untraced cache entry can never satisfy a trace request with
    an empty trace.
    """
    from repro.exp.engine import run_point_with_trace
    from repro.obs.events import EventStream

    point = Point(
        workload=args.workload,
        system=args.system,
        ncores=args.cores,
        seed=args.seed,
        scale=args.scale,
        check=args.check,
        retry_budget=args.retry_budget,
        **_capacity_overrides(args),
        **_traffic_overrides(args),
    )
    result, events, _metrics = run_point_with_trace(
        point,
        cache=None if args.no_cache else ResultCache(),
        refresh=args.refresh,
    )
    # Re-bound for display: --trace=N keeps the first N events, with
    # per-kind drop accounting for everything beyond the bound.
    tracer = EventStream(limit=args.trace if args.trace > 0 else None)
    for event in events:
        tracer.emit(event.kind, event.core, **event.detail)
    for kind, count in events.dropped_by_kind.items():
        tracer.dropped_by_kind[kind] = (
            tracer.dropped_by_kind.get(kind, 0) + count
        )
    _print_result(result)
    summary = ", ".join(
        f"{kind}={count}" for kind, count in sorted(tracer.summary().items())
    )
    print(f"\ntrace: {len(tracer.events)} events ({summary})"
          + (f", {tracer.dropped} dropped" if tracer.dropped else ""))
    for event in tracer.events:
        print(f"  {event}")
    return 0 if result.check_ok else 1


def _trace_source(args):
    """Obtain ``(label, events, metrics)`` for the trace commands.

    The pseudo-workload ``figure2`` runs the paper's two-core counter
    scenario directly; everything else goes through the experiment
    engine (and its trace-artifact cache).
    """
    if args.workload == "figure2":
        from repro.analysis.timeline import figure2_tracer

        return (
            f"figure2/{args.system}",
            figure2_tracer(args.system),
            {},
        )
    from repro.exp.engine import run_point_with_trace

    point = Point(
        workload=args.workload,
        system=args.system,
        ncores=args.cores,
        seed=args.seed,
        scale=args.scale,
        retry_budget=getattr(args, "retry_budget", None),
        **_capacity_overrides(args),
        **_traffic_overrides(args),
    )
    _result, events, metrics = run_point_with_trace(
        point,
        cache=None if args.no_cache else ResultCache(),
        refresh=args.refresh,
    )
    return f"{args.workload}/{args.system}", events, metrics


def _cmd_trace(args) -> int:
    """``repro trace export``: write a Perfetto-openable JSON trace."""
    from repro.obs.export import chrome_trace, write_chrome_trace

    label, events, _metrics = _trace_source(args)
    payload = chrome_trace(events, label=label)
    out = args.output or f"trace_{label.replace('/', '_')}.json"
    path = write_chrome_trace(out, payload)
    spans = sum(
        1 for e in payload["traceEvents"] if e.get("ph") == "X"
    )
    instants = sum(
        1 for e in payload["traceEvents"] if e.get("ph") == "i"
    )
    print(
        f"wrote {path}: {len(payload['traceEvents'])} trace events "
        f"({spans} txn spans, {instants} instants) — open in "
        "ui.perfetto.dev"
    )
    dropped = events.dropped_by_kind
    if dropped:
        drops = ", ".join(
            f"{kind}={count}" for kind, count in sorted(dropped.items())
        )
        print(f"note: bounded stream dropped events ({drops})")
    return 0


def _cmd_timeline(args) -> int:
    """``repro timeline``: ASCII timeline + contention/abort views."""
    from repro.analysis.timeline import render_timeline
    from repro.obs.views import (
        abort_breakdown,
        capacity_breakdown,
        contention_heatmap,
    )

    label, events, _metrics = _trace_source(args)
    ncores = 2 if args.workload == "figure2" else args.cores
    print(f"--- {label} ---")
    print(render_timeline(events, ncores=ncores, width=args.width))
    print(f"\ncontention by block ({label}):")
    print(contention_heatmap(events))
    print(f"\nabort attribution ({label}):")
    print(abort_breakdown(events))
    print(f"\ncapacity aborts by structure ({label}):")
    print(capacity_breakdown(events))
    return 0


def _cmd_metrics(args) -> int:
    """``repro metrics``: run one point and print its registry."""
    from repro.obs.metrics import render_snapshot

    label, _events, metrics = _trace_source(args)
    print(f"--- {label} ---")
    print(render_snapshot(metrics))
    return 0


def _cmd_check(args) -> int:
    """``repro check``: oracle matrix + fault-injection self-test."""
    from repro.check.matrix import check_spec, run_fault_matrix

    spec = check_spec(smoke=args.smoke)
    start = time.perf_counter()
    results = run_points(spec.points(), **_engine_opts(args))
    rows = []
    matrix_ok = True
    for point, result in results.items():
        matrix_ok = matrix_ok and result.check_ok
        golden = "-"
        if result.golden is not None:
            golden = ("ok" if result.golden_ok
                      else f"{result.golden['bytes_differing']}B differ")
        rows.append(
            (
                point.workload,
                point.system,
                result.commits,
                (f"{len(result.oracle_violations)} violations"
                 if result.oracle_checked and not result.oracle_ok
                 else ("ok" if result.oracle_checked else "-")),
                golden,
                "ok" if result.invariants_ok else "FAILED",
            )
        )
    elapsed = time.perf_counter() - start
    print(f"oracle matrix [{spec.name}]: {len(results)} points "
          f"in {elapsed:.1f}s")
    print(
        format_table(
            ["workload", "system", "commits", "oracle", "golden",
             "invariants"],
            rows,
        )
    )

    if args.no_faults:
        print(f"\noracle matrix: {'PASS' if matrix_ok else 'FAIL'} "
              "(fault matrix skipped)")
        return 0 if matrix_ok else 1

    print("\nfault matrix (control + every fault point, "
          "contended retcon scenario):")
    start = time.perf_counter()
    trials = run_fault_matrix()
    elapsed = time.perf_counter() - start
    faults_ok = True
    rows = []
    for trial in trials:
        faults_ok = faults_ok and trial.caught
        kinds = ",".join(sorted(trial.kinds)) or "-"
        rows.append(
            (
                trial.fault or "(control)",
                trial.stage,
                trial.fires,
                trial.checked_commits,
                trial.violations,
                kinds,
                "ok" if trial.caught else "MISSED",
            )
        )
    print(format_table(
        ["fault", "stage", "fires", "commits", "violations", "kinds",
         "verdict"],
        rows,
    ))
    injected = sum(1 for t in trials if t.fault is not None)
    print(f"fault matrix: {injected} faults in {elapsed:.1f}s")
    ok = matrix_ok and faults_ok
    print(f"\ncheck: {'PASS' if ok else 'FAIL'} "
          f"(oracle matrix {'ok' if matrix_ok else 'FAILED'}, "
          f"fault matrix {'ok' if faults_ok else 'FAILED'})")
    return 0 if ok else 1


def _cmd_fuzz(args) -> int:
    """``repro fuzz``: differential fuzzing campaigns.

    ``--smoke`` runs the fixed CI batch (210 programs: seeds 0..69 on
    each of 3 profiles across eager/lazy-vb/retcon); ``--minutes N``
    fuzzes fresh seeds (resuming past the ``.repro-fuzz/`` corpus)
    until the time budget runs out, checked per seed; the default is
    one batch of ``--seeds`` new seeds per profile.  ``--campaign ID``
    journals every batch and verdict to an append-only audit log under
    the corpus, and ``--campaign ID --resume`` continues an
    interrupted campaign without re-screening any verdicted seed.
    """
    from pathlib import Path

    from repro.fuzz.campaign import (
        CampaignError,
        CampaignOptions,
        run_campaign,
        smoke_options,
    )
    from repro.fuzz.gen import FUZZ_PROFILES

    for profile in args.profiles:
        if profile not in FUZZ_PROFILES:
            print(
                f"unknown fuzz profile {profile!r}; choose from "
                f"{sorted(FUZZ_PROFILES)}",
                file=sys.stderr,
            )
            return 2
    if args.resume and not args.campaign:
        print("--resume requires --campaign <id>", file=sys.stderr)
        return 2
    backends = tuple(
        dict.fromkeys(
            tuple(args.backends) + tuple(args.extra_backends or ())
        )
    )
    config = None
    capacity = _capacity_overrides(args)
    if capacity:
        from repro.sim.config import MachineConfig

        config = MachineConfig(**{
            name: (None if value == "unlimited" else value)
            for name, value in capacity.items()
        })
    common = dict(
        profiles=tuple(args.profiles),
        backends=backends,
        nthreads=args.cores,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        refresh=args.refresh,
        shrink=not args.no_shrink,
        emit=not args.no_emit,
        fault=args.fault,
        config=config,
        corpus_root=Path(args.corpus),
        campaign=args.campaign,
        resume=args.resume,
        schedule=not args.no_schedule,
    )
    if args.smoke:
        opts = smoke_options(**common)
    else:
        opts = CampaignOptions(
            seed_start=args.seed_start,
            seeds=args.seeds,
            minutes=args.minutes,
            **common,
        )
    try:
        report = run_campaign(opts)
    except CampaignError as exc:
        print(f"fuzz: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    for profile, seed, detail in report.engine_failures:
        print(
            f"  engine check failed: profile={profile} seed={seed}: "
            f"{detail}"
        )
    for profile, seed in report.diverging:
        print(f"  diverging: profile={profile} seed={seed}")
    for line in report.shrink_summaries:
        print(f"  {line}")
    for path in report.emitted:
        print(f"  regression: {path}")
    return 0 if report.ok else 1


def _cmd_compare(args) -> int:
    systems = args.systems.split(",")
    matrix = fig.run_matrix(
        (args.workload,), systems, ncores=args.cores, seed=args.seed,
        scale=args.scale, **_engine_opts(args),
    )
    rows = []
    ok = True
    for system in systems:
        result = matrix[(args.workload, system)]
        ok = ok and result.invariants_ok
        rows.append(
            (
                system,
                f"{result.speedup:.2f}x",
                result.aborts,
                f"{result.breakdown['conflict']:.1%}",
                "ok" if result.invariants_ok else "FAILED",
            )
        )
    seq = matrix[(args.workload, systems[0])].seq_cycles
    print(f"{args.workload} on {args.cores} cores "
          f"(seq = {seq} cycles)")
    print(
        format_table(
            ["system", "speedup", "aborts", "conflict", "invariants"],
            rows,
        )
    )
    return 0 if ok else 1


def _cmd_figure(args) -> int:
    params = dict(
        ncores=args.cores, seed=args.seed, scale=args.scale,
        **_engine_opts(args),
    )
    if args.number == "hybrid":
        return _figure_hybrid(args, params)
    if args.number == "capacity":
        return _figure_capacity(args, params)
    if args.number == "service":
        return _figure_service(args, params)
    try:
        number = int(args.number)
    except ValueError:
        print(f"no such figure: {args.number} "
              "(have 1, 2, 3, 4, 9, 10, hybrid, capacity, service)",
              file=sys.stderr)
        return 2
    if number == 1:
        print(bar_chart(fig.figure1(**params), max_value=args.cores,
                        title="Figure 1: eager HTM scalability"))
    elif number == 2:
        from repro.analysis.timeline import figure2_timelines

        points = fig.figure2()
        print(format_table(
            ["system", "cycles", "commits", "aborts", "stalls"],
            [(p.system, p.cycles, p.commits, p.aborts, p.stall_events)
             for p in points.values()],
        ))
        for system, timeline in figure2_timelines().items():
            print(f"\n--- {system} ---\n{timeline}")
    elif number == 3:
        print(bar_chart(fig.figure3(**params), max_value=args.cores,
                        title="Figure 3: before/after restructurings"))
    elif number == 4:
        print(breakdown_chart(fig.figure4(**params),
                              title="Figure 4: time breakdown (eager)"))
    elif number == 9:
        print(format_speedup_matrix(
            fig.figure9(**params), fig.EVAL_SYSTEMS,
            title="Figure 9: speedup over sequential",
        ))
    elif number == 10:
        data = fig.figure10(**params)
        flat, scales = {}, {}
        for name, systems in data.items():
            for system, payload in systems.items():
                label = f"{name}/{system}"
                flat[label] = payload["breakdown"]
                scales[label] = min(payload["normalized_runtime"], 1.5)
        print(breakdown_chart(
            flat, scales=scales,
            title="Figure 10: breakdown normalized to eager",
        ))
    else:
        print(f"no such figure: {number} "
              "(have 1, 2, 3, 4, 9, 10, hybrid, capacity, service)",
              file=sys.stderr)
        return 2
    return 0


def _figure_hybrid(args, params) -> int:
    """``repro figure hybrid``: the HyTM retry-budget tradeoff table.

    Sweeps the hybrid backend's retry budget across the smoke
    workloads, bracketed by the pure-HTM (``retcon``) and pure-STM
    endpoints, and renders markdown (``-o`` writes the committed
    ``docs/hybrid_tradeoff.md``).
    """
    from pathlib import Path

    data = fig.figure_hybrid(backend=args.backend, **params)
    text = fig.format_hybrid_tradeoff(data)
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = (
            "# HyTM tradeoff: instrumentation overhead vs. "
            "concurrency\n\n"
            f"Backend `{args.backend}` swept over HTM retry budgets "
            "(`rb=<n>`), bracketed by the pure-HTM (`htm` = retcon) "
            "and pure-STM (`stm`) endpoints at "
            f"{args.cores} cores, scale {args.scale}, seed "
            f"{args.seed}.  Regenerate with:\n\n"
            "    python -m repro figure hybrid --cores "
            f"{args.cores} --scale {args.scale} -o {args.output}\n\n"
        )
        path.write_text(header + text + "\n", encoding="utf-8")
        print(f"wrote {path}")
    else:
        print(text)
    return 0


def _figure_capacity(args, params) -> int:
    """``repro figure capacity``: the capacity-frontier table.

    Sweeps the speculative read/write-set bound across the smoke
    workloads on representative backends, bracketed by the unlimited
    endpoint and pure STM, and renders markdown (``-o`` writes the
    committed ``docs/capacity_frontier.md``).
    """
    from pathlib import Path

    data = fig.figure_capacity(**params)
    text = fig.format_capacity_frontier(data)
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        steps = ", ".join(str(s) for s in fig.CAPACITY_STEPS)
        header = (
            "# Capacity frontier: speedup vs. speculative set size\n\n"
            "Read- and write-set bounds swept together over "
            f"{steps} blocks on "
            f"{', '.join(fig.CAPACITY_BACKENDS)} (plus the pure-STM "
            f"endpoint, which tracks sets in software) at "
            f"{args.cores} cores, scale {args.scale}, seed "
            f"{args.seed}.  Regenerate with:\n\n"
            "    python -m repro figure capacity --cores "
            f"{args.cores} --scale {args.scale} -o {args.output}\n\n"
        )
        path.write_text(header + text + "\n", encoding="utf-8")
        print(f"wrote {path}")
    else:
        print(text)
    return 0


def _figure_service(args, params) -> int:
    """``repro figure service``: the service-traffic sweep table.

    Runs every service workload on the service backends (traced, so
    latency histograms and the repair counter ride along) and renders
    markdown (``-o`` writes the committed ``docs/service_traffic.md``).
    """
    from pathlib import Path

    # Traced points run one at a time (each needs its event stream
    # + metrics registry in-process); the engine's pool is unused.
    params.pop("jobs", None)
    backends = (
        tuple(args.backends.split(","))
        if args.backends else fig.SERVICE_BACKENDS
    )
    data = fig.figure_service(
        backends=backends,
        check=args.check,
        **_traffic_overrides(args),
        **params,
    )
    text = fig.format_service_traffic(data)
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        traffic = "".join(
            f" --{k} {v}" for k, v in _traffic_overrides(args).items()
        )
        header = (
            "# Service traffic: commit, repair, and abort rates with "
            "tail latency\n\n"
            "The four production-traffic service workloads "
            "(Zipf-popular users, diurnal arrivals, hot shared "
            f"counters) on {', '.join(backends)} at "
            f"{args.cores} cores, scale {args.scale}, seed "
            f"{args.seed}.  Repair rate = commits that lost blocks "
            "to a conflicting writer and still committed via "
            "symbolic repair; latency percentiles are "
            "power-of-two-bucket upper bounds from the "
            "`txn.duration_cycles` histogram.  Regenerate with:\n\n"
            "    python -m repro figure service --cores "
            f"{args.cores} --scale {args.scale} --seed {args.seed}"
            f"{traffic} -o {args.output}\n\n"
        )
        path.write_text(header + text + "\n", encoding="utf-8")
        print(f"wrote {path}")
    else:
        print(text)
    return 0


def _cmd_table(args) -> int:
    number = args.number
    if number == 1:
        print(format_table(["Parameter", "Value"], fig.table1()))
    elif number == 2:
        print(format_table(["Workload", "Description", "Input"],
                           fig.table2()))
    elif number == 3:
        data = fig.table3(
            ncores=args.cores, seed=args.seed, scale=args.scale,
            **_engine_opts(args),
        )
        rows = []
        for name, row in data.items():
            cells = [name]
            for column in (
                "blocks_lost", "blocks_tracked", "symbolic_registers",
                "private_stores", "constraint_addresses",
                "commit_cycles",
            ):
                avg, peak = row[column]
                cells.append(f"{avg:.1f} ({peak:.0f})")
            cells.append(f"{row['commit_stall_percent']:.1f}")
            rows.append(cells)
        print(format_table(
            ["workload", "lost", "tracked", "sym regs", "priv stores",
             "constr addrs", "commit cyc", "stall %"],
            rows,
        ))
    else:
        print(f"no such table: {number} (have 1, 2, 3)",
              file=sys.stderr)
        return 2
    return 0


def _cmd_sweep(args) -> int:
    from repro.analysis.sweeps import format_sweep, sweep_matrix

    if args.smoke:
        return _run_smoke(args)
    if args.workload is None:
        print("sweep: a workload is required unless --smoke is given",
              file=sys.stderr)
        return 2
    core_counts = tuple(
        int(n) for n in args.core_counts.split(",")
    )
    systems = (
        [args.backend] if args.backend else args.systems.split(",")
    )
    curves = sweep_matrix(
        args.workload,
        systems,
        core_counts,
        seed=args.seed,
        scale=args.scale,
        check=args.check,
        retry_budget=args.retry_budget,
        **_capacity_overrides(args),
        **_traffic_overrides(args),
        **_engine_opts(args),
    )
    print(format_sweep(args.workload, curves))
    if args.check:
        bad = [
            (system, point.ncores)
            for system, curve in curves.items()
            for point in curve
            if not point.check_ok
        ]
        if bad:
            print("check FAILED at: "
                  + ", ".join(f"{s}@{n}" for s, n in bad))
            return 1
        print("check: all points ok")
    return 0


def _run_smoke(args) -> int:
    """The CI smoke grid: 3 workloads x 3 systems at tiny scale.

    ``--backend NAME`` swaps the system trio for a single system (the
    CI hybrid-smoke step runs it on ``hybrid-retcon`` alone), and
    ``--check``/``--retry-budget`` apply to every smoke point.
    """
    from dataclasses import replace as _replace

    if args.backend:
        spec = smoke_spec(systems=(args.backend,))
    else:
        spec = smoke_spec()
    points = [
        _replace(
            point, check=args.check, retry_budget=args.retry_budget,
            **_capacity_overrides(args),
        )
        for point in spec.points()
    ]
    start = time.perf_counter()
    results = run_points(points, **_engine_opts(args))
    elapsed = time.perf_counter() - start
    rows = []
    ok = True
    for point, result in results.items():
        point_ok = (
            result.check_ok if args.check else result.invariants_ok
        )
        ok = ok and point_ok
        rows.append(
            (
                point.workload,
                point.system,
                f"{result.speedup:.2f}x",
                result.aborts,
                "ok" if point_ok else "FAILED",
            )
        )
    print(f"smoke grid: {len(results)} points in {elapsed:.1f}s")
    print(
        format_table(
            ["workload", "system", "speedup", "aborts",
             "check" if args.check else "invariants"],
            rows,
        )
    )
    return 0 if ok else 1


def _cmd_profile(args) -> int:
    """``repro profile``: wall-clock-time the smoke grid.

    Unlike every other command this measures the simulator itself, so
    it never touches the result cache and times each point in-process
    (workload generation excluded).
    """
    from repro.analysis.profile import (
        bench_payload,
        gate_against,
        latest_bench,
        profile_smoke,
        write_bench,
    )

    def progress(profile) -> None:
        print(
            f"  {profile.workload:12s} {profile.system:8s} "
            f"{profile.sim_seconds * 1000:8.1f} ms  "
            f"{profile.cycles_per_second / 1e6:6.2f} Mcycles/s",
            file=sys.stderr,
        )

    print(
        f"profiling smoke grid (scale={args.scale}, cores={args.cores}, "
        f"seed={args.seed}, best of {args.repeats})...",
        file=sys.stderr,
    )
    profiles = profile_smoke(
        scale=args.scale,
        ncores=args.cores,
        seed=args.seed,
        repeats=args.repeats,
        progress=progress,
    )
    payload = bench_payload(profiles, label=args.label)
    print(format_table(
        ["workload", "system", "sim ms", "gen ms", "Mcycles/s"],
        [
            (
                p.workload,
                p.system,
                f"{p.sim_seconds * 1000:.1f}",
                f"{p.gen_seconds * 1000:.1f}",
                f"{p.cycles_per_second / 1e6:.2f}",
            )
            for p in profiles
        ],
    ))
    print(f"grid total: {payload['total_sim_seconds'] * 1000:.1f} ms "
          f"simulation, {payload['grid_cycles_per_second'] / 1e6:.2f} "
          "Mcycles/s")
    if args.output:
        write_bench(args.output, payload)
        print(f"wrote {args.output}")
    if args.gate:
        baseline = args.baseline or latest_bench()
        if baseline is None:
            print("perf gate: no BENCH_pr*.json baseline found", file=sys.stderr)
            return 1
        result = gate_against(payload, baseline)
        print(result.describe())
        if not result.ok:
            return 1
    return 0


def _cmd_experiments(args) -> int:
    from repro.analysis.experiments import main as experiments_main

    argv = ["--cores", str(args.cores), "--scale", str(args.scale),
            "--seed", str(args.seed), "-o", args.output]
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if args.no_cache:
        argv.append("--no-cache")
    if args.refresh:
        argv.append("--refresh")
    return experiments_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "RETCON reproduction: simulate the paper's workloads and "
            "regenerate its tables and figures."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and systems")

    run = sub.add_parser("run", help="run one workload on one system")
    run.add_argument("workload", choices=sorted(WORKLOADS))
    run.add_argument("--system", default="retcon")
    run.add_argument(
        "--backend", dest="system",
        help="alias for --system (stm, hybrid-retcon, progressive, ...)",
    )
    run.add_argument(
        "--check", action="store_true",
        help="attach the repair oracle and diff against a golden run",
    )
    run.add_argument(
        "--trace", nargs="?", const=200, default=None, type=int,
        metavar="N",
        help="print the first N simulator trace events (default 200; "
             "0 = unlimited; bypasses the result cache)",
    )
    _add_run_args(run)

    compare = sub.add_parser(
        "compare", help="run one workload on several systems"
    )
    compare.add_argument("workload", choices=sorted(WORKLOADS))
    compare.add_argument(
        "--systems", default="eager,lazy-vb,retcon",
        help="comma-separated system list",
    )
    _add_run_args(compare)

    figure = sub.add_parser(
        "figure",
        help="regenerate a paper figure (1/2/3/4/9/10), the 'hybrid' "
             "HyTM tradeoff table, the 'capacity' frontier table, or "
             "the 'service' traffic table",
    )
    figure.add_argument("number")
    figure.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="write the 'hybrid'/'capacity'/'service' markdown here "
             "instead of stdout",
    )
    figure.add_argument(
        "--backend", default="hybrid-retcon",
        help="hybrid backend swept by 'figure hybrid' "
             "(default hybrid-retcon)",
    )
    figure.add_argument(
        "--backends", default=None, metavar="A,B,...",
        help="comma-separated backend list for 'figure service' "
             "(default eager,retcon,hybrid-retcon)",
    )
    figure.add_argument(
        "--check", action="store_true",
        help="attach the repair oracle + golden differ to every "
             "'figure service' point (fails on any violation)",
    )
    _add_run_args(figure)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int)
    _add_run_args(table)

    experiments = sub.add_parser(
        "experiments", help="run everything and write EXPERIMENTS.md"
    )
    experiments.add_argument("-o", "--output", default="EXPERIMENTS.md")
    _add_run_args(experiments)

    sweep = sub.add_parser(
        "sweep", help="speedup vs core count for one workload"
    )
    sweep.add_argument(
        "workload", nargs="?", default=None, choices=sorted(WORKLOADS),
    )
    sweep.add_argument(
        "--systems", default="eager,retcon",
        help="comma-separated system list",
    )
    sweep.add_argument(
        "--core-counts", default="1,2,4,8,16,32",
        help="comma-separated core counts",
    )
    sweep.add_argument("--scale", type=float, default=0.5)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument(
        "--smoke", action="store_true",
        help="run the tiny CI smoke grid instead of a core sweep",
    )
    sweep.add_argument(
        "--backend", default=None, metavar="SYSTEM",
        help="with --smoke: run the smoke workloads on this single "
             "system instead of the default eager/lazy-vb/retcon trio",
    )
    sweep.add_argument(
        "--retry-budget", type=int, default=None, metavar="N",
        help="HTM attempts before a hybrid backend escalates to STM",
    )
    sweep.add_argument(
        "--check", action="store_true",
        help="attach the repair oracle + golden differ to every point",
    )
    _add_capacity_args(sweep)
    _add_traffic_args(sweep)
    _add_engine_args(sweep)

    profile = sub.add_parser(
        "profile",
        help="wall-clock-time the simulator over the smoke grid and "
             "emit a BENCH json (perf trajectory)",
    )
    profile.add_argument("--cores", type=int, default=4)
    profile.add_argument("--scale", type=float, default=0.1)
    profile.add_argument("--seed", type=int, default=1)
    profile.add_argument(
        "--repeats", type=int, default=3,
        help="simulations per point; the best is reported",
    )
    profile.add_argument(
        "--label", default="pr3",
        help="label recorded in the payload (e.g. the PR number)",
    )
    profile.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write the JSON payload to FILE (e.g. BENCH_pr3.json)",
    )
    profile.add_argument(
        "--gate", action="store_true",
        help="compare against the newest committed BENCH_pr*.json and "
             "exit 1 on a >5%% grid cycles/s regression",
    )
    profile.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="explicit baseline BENCH json for --gate (default: "
             "newest BENCH_pr*.json in the repo root)",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random transactional programs "
             "cross-checked on several backends against a sequential "
             "golden run, with automatic shrinking of divergences",
    )
    fuzz.add_argument(
        "--smoke", action="store_true",
        help="fixed CI batch: seeds 0..69 on every profile (210 "
             "programs across 3 backends)",
    )
    fuzz.add_argument(
        "--minutes", type=float, default=None, metavar="N",
        help="fuzz fresh seeds until N minutes elapse (resumes past "
             "the corpus high-water mark)",
    )
    fuzz.add_argument(
        "--backends", nargs="+", default=["eager", "lazy-vb", "retcon"],
        help="TM systems to cross-check (default: eager lazy-vb retcon)",
    )
    fuzz.add_argument(
        "--backend", action="append", dest="extra_backends",
        default=None, metavar="NAME",
        help="extra TM system appended to --backends (repeatable; "
             "e.g. --backend stm --backend hybrid-retcon)",
    )
    fuzz.add_argument(
        "--profiles", nargs="+",
        default=["fuzz-mixed", "fuzz-rmw", "fuzz-branchy"],
        help="generator profiles to draw programs from",
    )
    fuzz.add_argument(
        "--seed-start", type=int, default=None,
        help="first seed (default: resume past the corpus)",
    )
    fuzz.add_argument(
        "--seeds", type=int, default=70,
        help="seeds per profile in one batch (default 70)",
    )
    fuzz.add_argument("--cores", type=int, default=4,
                      help="threads per generated program")
    fuzz.add_argument(
        "--fault", default=None, metavar="NAME",
        help="inject a check/faults.py fault (shrinker exercise; the "
             "campaign is expected to go red)",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="report divergences without minimizing them",
    )
    fuzz.add_argument(
        "--no-emit", action="store_true",
        help="shrink but do not write regression test files",
    )
    fuzz.add_argument(
        "--corpus", default=".repro-fuzz",
        help="corpus directory (default .repro-fuzz)",
    )
    fuzz.add_argument(
        "--campaign", default=None, metavar="ID",
        help="journal every batch and verdict to an append-only "
             "audit log (<corpus>/journals/ID.jsonl); required for "
             "--resume",
    )
    fuzz.add_argument(
        "--resume", action="store_true",
        help="continue the named --campaign from its journal: "
             "verdicted seeds are never re-screened, the interrupted "
             "batch tail runs first",
    )
    fuzz.add_argument(
        "--no-schedule", action="store_true",
        help="uniform per-profile seed budgets instead of the "
             "coverage-guided (divergence-weighted, epsilon-greedy) "
             "scheduler used for --minutes campaigns",
    )
    _add_capacity_args(fuzz)
    _add_engine_args(fuzz)

    trace = sub.add_parser(
        "trace", help="trace tooling (Perfetto/Chrome-trace export)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    export = trace_sub.add_parser(
        "export",
        help="run one point with tracing and write Chrome-trace JSON "
             "(openable in ui.perfetto.dev); the pseudo-workload "
             "'figure2' exports the paper's two-core counter scenario",
    )
    export.add_argument(
        "workload", choices=sorted(WORKLOADS) + ["figure2"]
    )
    export.add_argument("--system", default="retcon")
    export.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="output path (default trace_<workload>_<system>.json)",
    )
    _add_run_args(export)

    timeline = sub.add_parser(
        "timeline",
        help="ASCII per-core timeline plus contention heatmap and "
             "abort-attribution breakdown for one traced run",
    )
    timeline.add_argument(
        "workload", choices=sorted(WORKLOADS) + ["figure2"]
    )
    timeline.add_argument("--system", default="retcon")
    timeline.add_argument(
        "--width", type=int, default=72,
        help="timeline width in columns (default 72)",
    )
    _add_run_args(timeline)

    metrics = sub.add_parser(
        "metrics",
        help="run one point with the metrics registry attached and "
             "print every counter, gauge, and histogram",
    )
    metrics.add_argument("workload", choices=sorted(WORKLOADS))
    metrics.add_argument("--system", default="retcon")
    _add_run_args(metrics)

    check = sub.add_parser(
        "check",
        help="correctness oracle: replay every commit, diff against a "
             "golden run, and self-test via fault injection",
    )
    check.add_argument(
        "--smoke", action="store_true",
        help="small grid + shortened fault scenario (CI)",
    )
    check.add_argument(
        "--no-faults", action="store_true",
        help="skip the fault-injection self-test",
    )
    _add_engine_args(check)

    return parser


COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "figure": _cmd_figure,
    "table": _cmd_table,
    "experiments": _cmd_experiments,
    "sweep": _cmd_sweep,
    "check": _cmd_check,
    "fuzz": _cmd_fuzz,
    "profile": _cmd_profile,
    "trace": _cmd_trace,
    "timeline": _cmd_timeline,
    "metrics": _cmd_metrics,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
