"""Directory-based coherence protocol with latency charging.

The fabric is the single source of truth for:

* which cores hold a block, and who (if anyone) holds it exclusively;
* per-core L1 / L2 / permissions-only caches (capacity modeling);
* the speculative read/written bits used for HTM conflict detection.

Latency model (Table 1): L1 hit 1 cycle; L2 hit 10 cycles; a directory
hop costs 20 cycles; DRAM lookup costs 100 cycles.  A miss serviced by
a remote cache costs ``L2 + 3 hops`` (request to directory, forward to
owner, data to requester); a miss serviced by memory costs
``L2 + 2 hops + DRAM``; an upgrade (S→M) costs ``L2 + 2 hops``.

The HTM layer resolves conflicts *before* asking the fabric to perform
an access, so by the time :meth:`CoherenceFabric.acquire` invalidates a
remote copy, any speculative bits on it have either been cleared (the
remote transaction aborted) or deliberately released (the remote core
is value-tracking the block and lets it be stolen — the RETCON path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mem.cache import PermissionsOnlyCache, SetAssocCache


@dataclass(slots=True)
class AccessOutcome:
    """Result of performing a coherence access."""

    latency: int
    #: remote cores whose copy was invalidated (write) or downgraded (read)
    invalidated: tuple[int, ...] = ()
    #: True if this access hit in the local L1 with sufficient permission
    l1_hit: bool = False


#: shared outcome for the L1-hit fast path; never mutate
_L1_HIT = AccessOutcome(latency=1, l1_hit=True)


@dataclass
class _CoreCaches:
    l1: SetAssocCache
    l2: SetAssocCache
    perm: PermissionsOnlyCache
    #: blocks speculatively read / written by the current transaction
    spec_read: set[int] = field(default_factory=set)
    spec_written: set[int] = field(default_factory=set)


class CoherenceFabric:
    """Directory + per-core cache hierarchy for an N-core machine."""

    def __init__(self, config, ncores: int) -> None:
        self.config = config
        self.ncores = ncores
        block = config.block_bytes
        self.cores = [
            _CoreCaches(
                l1=SetAssocCache(
                    config.l1_bytes, config.l1_assoc, block
                ),
                l2=SetAssocCache(
                    config.l2_bytes, config.l2_assoc, block
                ),
                perm=PermissionsOnlyCache(
                    config.perm_cache_bytes, config.perm_cache_assoc, block
                ),
            )
            for _ in range(ncores)
        ]
        # Directory state: which cores hold each block; exclusive owner.
        self._holders: dict[int, set[int]] = {}
        self._owner: dict[int, Optional[int]] = {}
        # Reverse maps for O(1) conflict probing.
        self._spec_readers: dict[int, set[int]] = {}
        self._spec_writers: dict[int, set[int]] = {}
        #: cores whose transaction lost speculative tracking to capacity
        self.overflowed: set[int] = set()
        #: count of speculative-line spills into the permissions-only cache
        self.perm_cache_spills = 0
        #: count of genuine overflows (permissions-only cache exhausted too)
        self.overflow_events = 0
        #: interned no-invalidation AccessOutcomes, keyed by latency
        self._plain_outcomes: dict[int, AccessOutcome] = {}

    # ------------------------------------------------------------------
    # Speculative-bit bookkeeping (conflict detection substrate)
    # ------------------------------------------------------------------
    def mark_spec(self, core: int, block: int, write: bool) -> None:
        """Set the speculative read or written bit for *core* on *block*."""
        caches = self.cores[core]
        if write:
            caches.spec_written.add(block)
            reverse = self._spec_writers
        else:
            caches.spec_read.add(block)
            reverse = self._spec_readers
        # get-or-create without allocating a default set per call (this
        # runs once per in-transaction block access).
        cores = reverse.get(block)
        if cores is None:
            reverse[block] = {core}
        else:
            cores.add(core)
        line = caches.l1.lookup(block, touch=False)
        if line is not None:
            if write:
                line.spec_written = True
            else:
                line.spec_read = True

    def unmark_spec(self, core: int, block: int) -> None:
        """Clear both speculative bits of *core* on *block* (a steal)."""
        caches = self.cores[core]
        caches.spec_read.discard(block)
        caches.spec_written.discard(block)
        self._discard_reverse(core, block)
        for cache in (caches.l1, caches.perm):
            line = cache.lookup(block, touch=False)
            if line is not None:
                line.spec_read = False
                line.spec_written = False

    def clear_spec(self, core: int) -> None:
        """Clear all speculative bits of *core* (commit or abort).

        Only the blocks recorded in the per-core speculative sets can
        carry line bits (mark_spec and the L1→perm spill are the only
        setters), so clearing walks those blocks instead of sweeping
        every line of the L1 and permissions-only caches.
        """
        caches = self.cores[core]
        touched = caches.spec_read | caches.spec_written
        for block in touched:
            self._discard_reverse(core, block)
        caches.spec_read.clear()
        caches.spec_written.clear()
        caches.l1.clear_speculative_blocks(touched)
        caches.perm.clear_speculative_blocks(touched)
        self.overflowed.discard(core)

    def _discard_reverse(self, core: int, block: int) -> None:
        for reverse in (self._spec_readers, self._spec_writers):
            cores = reverse.get(block)
            if cores is not None:
                cores.discard(core)
                if not cores:
                    del reverse[block]

    def spec_readers(self, block: int) -> set[int]:
        return set(self._spec_readers.get(block, ()))

    def spec_writers(self, block: int) -> set[int]:
        return set(self._spec_writers.get(block, ()))

    def has_other_spec_writer(self, block: int, core: int) -> bool:
        """Does any core other than *core* speculatively write *block*?

        Allocation-free variant of ``spec_writers(block) - {core}`` for
        the per-access tracking-eligibility check.
        """
        writers = self._spec_writers.get(block)
        if not writers:
            return False
        if core in writers:
            return len(writers) > 1
        return True

    def conflicting_cores(
        self, core: int, block: int, write: bool
    ) -> set[int]:
        """Remote cores whose speculative bits conflict with this access.

        A conflict is an external write request to a speculatively-read
        block, or any external request to a speculatively-written block
        (paper §2).
        """
        writers = self._spec_writers.get(block)
        readers = self._spec_readers.get(block) if write else None
        conflicts = set(writers) if writers else set()
        if readers:
            conflicts |= readers
        conflicts.discard(core)
        return conflicts

    def is_spec(self, core: int, block: int) -> bool:
        caches = self.cores[core]
        return block in caches.spec_read or block in caches.spec_written

    def footprint(self, core: int) -> int:
        """Number of blocks speculatively touched by *core*."""
        caches = self.cores[core]
        return len(caches.spec_read | caches.spec_written)

    # ------------------------------------------------------------------
    # Coherence accesses
    # ------------------------------------------------------------------
    def acquire(self, core: int, block: int, write: bool) -> AccessOutcome:
        """Obtain read or write permission for *block* on *core*.

        Performs all remote invalidations/downgrades, updates directory
        state and local caches, and returns the latency.
        """
        cfg = self.config
        caches = self.cores[core]
        line = caches.l1.lookup(block)

        if line is not None and (not write or line.writable):
            # L1 hit with sufficient permission: the hottest access by
            # far, so it returns a shared (treat-as-immutable) outcome
            # and touches no directory structures.  A present L1 line
            # implies a prior acquire, so the holders entry exists.
            if write and self._owner.get(block) != core:
                # Exclusive in L1 but directory stale — cannot happen.
                self._owner[block] = core
            return _L1_HIT

        holders = self._holders.get(block)
        if holders is None:
            holders = set()
            self._holders[block] = holders
        owner = self._owner.get(block)
        invalidated: list[int] = []
        if line is not None and write:
            # Upgrade miss: S -> M through the directory.
            latency = cfg.l2_hit_cycles + 2 * cfg.hop_cycles
            invalidated = self._invalidate_remotes(core, block)
            line.writable = True
            holders.clear()
            holders.add(core)
            self._owner[block] = core
            return AccessOutcome(latency=latency, invalidated=tuple(invalidated))

        # L1 miss: check the private L2.
        l2_line = caches.l2.lookup(block)
        if l2_line is not None and (not write or l2_line.writable):
            latency = cfg.l2_hit_cycles
        elif l2_line is not None and write:
            # In L2 but needs an upgrade.
            latency = cfg.l2_hit_cycles + 2 * cfg.hop_cycles
        else:
            # Miss in the private hierarchy: go to the directory.
            remote = (holders - {core}) or (
                {owner} if owner is not None and owner != core else set()
            )
            if remote:
                latency = cfg.l2_hit_cycles + 3 * cfg.hop_cycles
            else:
                latency = (
                    cfg.l2_hit_cycles
                    + 2 * cfg.hop_cycles
                    + cfg.dram_cycles
                )

        if write:
            invalidated = self._invalidate_remotes(core, block)
            holders.clear()
            holders.add(core)
            self._owner[block] = core
        else:
            prev_owner = self._owner.get(block)
            if prev_owner is not None and prev_owner != core:
                self._downgrade(prev_owner, block)
                invalidated.append(prev_owner)
                self._owner[block] = None
            holders.add(core)

        self._install(core, block, writable=write)
        if not invalidated:
            # Miss without remote copies: intern the outcome per
            # latency (outcomes are treat-as-immutable, like _L1_HIT).
            outcome = self._plain_outcomes.get(latency)
            if outcome is None:
                outcome = AccessOutcome(latency=latency)
                self._plain_outcomes[latency] = outcome
            return outcome
        return AccessOutcome(latency=latency, invalidated=tuple(invalidated))

    def latency_quote(self, core: int, block: int, write: bool) -> int:
        """The latency :meth:`acquire` would charge, without performing it.

        A pure read of the directory and cache state: no permissions
        change hands, no line is installed or invalidated, and no LRU
        state is touched, so quoting is side-effect-free and an
        immediately following ``acquire(core, block, write)`` charges
        exactly the quoted number of cycles.  The event-driven
        scheduler (and tests reasoning about wakeup times) can price an
        access without perturbing the fabric.
        """
        cfg = self.config
        caches = self.cores[core]
        line = caches.l1.lookup(block, touch=False)
        if line is not None:
            if not write or line.writable:
                return 1
            # Upgrade miss: S -> M through the directory.
            return cfg.l2_hit_cycles + 2 * cfg.hop_cycles
        l2_line = caches.l2.lookup(block, touch=False)
        if l2_line is not None:
            if not write or l2_line.writable:
                return cfg.l2_hit_cycles
            return cfg.l2_hit_cycles + 2 * cfg.hop_cycles
        holders = self._holders.get(block)
        owner = self._owner.get(block)
        remote = (holders - {core}) if holders else set()
        if not remote and owner is not None and owner != core:
            remote = {owner}
        if remote:
            return cfg.l2_hit_cycles + 3 * cfg.hop_cycles
        return cfg.l2_hit_cycles + 2 * cfg.hop_cycles + cfg.dram_cycles

    def _invalidate_remotes(self, core: int, block: int) -> list[int]:
        holders = self._holders.get(block, set())
        owner = self._owner.get(block)
        targets = set(holders)
        if owner is not None:
            targets.add(owner)
        targets.discard(core)
        for other in targets:
            remote = self.cores[other]
            remote.l1.invalidate(block)
            remote.l2.invalidate(block)
            remote.perm.invalidate(block)
        if owner is not None and owner != core:
            self._owner[block] = None
        return sorted(targets)

    def _downgrade(self, core: int, block: int) -> None:
        caches = self.cores[core]
        caches.l1.downgrade(block)
        caches.l2.downgrade(block)

    def _install(self, core: int, block: int, writable: bool) -> None:
        caches = self.cores[core]
        _, l1_victim = caches.l1.insert(block, writable=writable)
        caches.l2.insert(block, writable=writable)
        if l1_victim is not None:
            self._handle_l1_eviction(core, l1_victim)

    def _handle_l1_eviction(self, core: int, victim) -> None:
        """Spill an evicted L1 line; speculative bits go to the
        permissions-only cache (OneTM), or overflow if that fails."""
        caches = self.cores[core]
        if not victim.speculative:
            return
        self.perm_cache_spills += 1
        perm_line, perm_victim = caches.perm.insert(
            victim.block, writable=victim.writable
        )
        perm_line.spec_read = victim.spec_read
        perm_line.spec_written = victim.spec_written
        if perm_victim is not None and perm_victim.speculative:
            # Lost speculative tracking entirely: an overflow (OneTM
            # would serialize this transaction; see htm.system).
            self.overflow_events += 1
            self.overflowed.add(core)

    # ------------------------------------------------------------------
    # Introspection (used by tests)
    # ------------------------------------------------------------------
    def holders_of(self, block: int) -> set[int]:
        return set(self._holders.get(block, ()))

    def owner_of(self, block: int) -> Optional[int]:
        return self._owner.get(block)
