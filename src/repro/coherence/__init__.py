"""Directory-based coherence model.

Provides latency charging for memory accesses, tracks which cores hold
which blocks, performs remote invalidations/downgrades, and maintains
the speculative read/written bits that the HTM layer uses for conflict
detection (paper §2, "Conflict detection").
"""

from repro.coherence.directory import AccessOutcome, CoherenceFabric

__all__ = ["CoherenceFabric", "AccessOutcome"]
