"""Software transactional memory: the HyTM slow path.

The STM backend executes transactions against the same simulated
memory and coherence fabric as the hardware backends, but implements
conflict detection in *software*: per-location ownership/version
metadata (orecs) laid out in simulated memory by the bump allocator,
instrumented read/write barriers charged as extra ISA instructions,
lazy versioning in a private write buffer, and commit-time validation.

:mod:`repro.stm.metadata` lays out the metadata region;
:mod:`repro.stm.backend` implements the barriers and the commit
protocol, both standalone (``stm``) and as the escalation target of
the hybrid family in :mod:`repro.htm.hytm`.
"""

from repro.stm.backend import STMMixin, STMSystem
from repro.stm.metadata import STM_META_BASE, StmMetadata

__all__ = [
    "STMMixin",
    "STMSystem",
    "StmMetadata",
    "STM_META_BASE",
]
