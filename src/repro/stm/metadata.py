"""STM metadata layout in simulated memory.

The software path's bookkeeping lives in the *simulated* address
space, placed by the same :class:`~repro.mem.allocator.BumpAllocator`
the workloads use, so every metadata access pays real coherence
latency and contends for real cache blocks:

* a **global version clock** word on its own block — bumped by every
  writing STM commit; hardware transactions in hybrid mode *subscribe*
  to it (a plain speculative load at their first access), which is how
  an STM commit dooms every concurrently running hardware transaction
  (the concurrency cost Brown & Ravi quantify);
* a **fallback token** word on its own block — the progressive
  variant's mutual exclusion between pessimistic fallbacks;
* an **orec table**: one 16-byte ownership record per hash bucket
  (a version word and an owner word), block-aligned, so four orecs
  share a cache block and the table exhibits realistic false sharing.

Blocks hash to orecs by block number modulo the table size; hash
collisions only ever cause spurious aborts, never missed conflicts.
"""

from __future__ import annotations

from repro.mem.address import BLOCK_SIZE, block_of
from repro.mem.allocator import BumpAllocator
from repro.sim.config import MachineConfig

#: base of the metadata region: far above any workload allocation
#: (workload generators start their allocators near the bottom of the
#: address space and the fuzzer's layouts stay below a few MB)
STM_META_BASE = 1 << 32

#: bytes per ownership record: version word + owner word
OREC_STRIDE = 16


class StmMetadata:
    """Addresses of the STM metadata structures for one machine."""

    __slots__ = (
        "norecs",
        "clock_addr",
        "clock_block",
        "token_addr",
        "token_block",
        "orec_base",
        "orec_blocks",
    )

    def __init__(self, config: MachineConfig) -> None:
        if config.stm_orecs <= 0:
            raise ValueError("stm_orecs must be positive")
        alloc = BumpAllocator(start=STM_META_BASE)
        self.norecs = config.stm_orecs
        self.clock_addr = alloc.alloc_block(8)
        self.token_addr = alloc.alloc_block(8)
        self.orec_base = alloc.alloc(
            self.norecs * OREC_STRIDE, align=BLOCK_SIZE
        )
        self.clock_block = block_of(self.clock_addr)
        self.token_block = block_of(self.token_addr)
        self.orec_blocks = (
            self.norecs * OREC_STRIDE + BLOCK_SIZE - 1
        ) // BLOCK_SIZE

    # ------------------------------------------------------------------
    def orec_addr(self, block: int) -> int:
        """Version-word address of the orec covering data *block*."""
        return self.orec_base + (block % self.norecs) * OREC_STRIDE

    def owner_addr(self, orec_addr: int) -> int:
        """Owner-word address for an orec's version-word address."""
        return orec_addr + 8

    def covers(self, addr: int) -> bool:
        """Is *addr* inside the metadata region?  (Used by tests and
        assertions: workload data must never alias the metadata.)"""
        return STM_META_BASE <= addr < self.orec_base + (
            self.norecs * OREC_STRIDE
        )
