"""The STM slow path: barriers, commit protocol, and the HyTM glue.

:class:`STMMixin` implements a word-based software TM in the style of
TL2/NOrec, executing against the *simulated* memory and coherence
fabric so its costs are charged in the same currency as the hardware
backends':

* **metadata in simulated memory** — the orec table, global version
  clock, and fallback token are laid out by
  :class:`repro.stm.metadata.StmMetadata`; every barrier pays real
  coherence latency for the metadata blocks it touches (and the orec
  table's false sharing is real, four orecs per cache block);
* **instrumented barriers** — each read/write barrier additionally
  charges ``stm_read_barrier_instrs`` / ``stm_write_barrier_instrs``
  extra ISA instructions (1 cycle each at 1 IPC), the instrumentation
  overhead axis of the Brown & Ravi tradeoff;
* **lazy versioning** — transactional stores go to a private
  byte-granular write buffer; memory is untouched until commit, so an
  STM abort needs no rollback;
* **commit-time validation** — the read set is a map orec → version
  sampled at first read; commit revalidates every entry and aborts
  (reason ``"validation"``) on any mismatch, then publishes: write
  buffer → memory, write-set orec bumps, global clock bump.

Hybrid (HyTM) mode adds the synchronization that makes hardware and
software transactions mutually safe:

* hardware transactions **subscribe** to the clock block with a plain
  speculative load at their first access; a writing STM commit dooms
  every subscriber (reason ``"subscription"``) *before* it writes
  back, so a doomed transaction's rollback can never clobber
  committed data;
* hardware commits **publish** their write sets to the orec table
  (version bumps, charged ``stm_subscribe_instrs`` each) so software
  validation observes them; non-transactional stores bump orecs too
  (strong isolation);
* the **progressive** variant (Kuznetsov & Ravi) makes the fallback
  pessimistic: it serializes on the fallback token, acquires orec
  *ownership* for everything it touches, dooms conflicting hardware
  speculation at access time, and commits without validation — once
  escalated it structurally cannot abort again (it owns its footprint,
  holds no speculative state the fabric could kill, and skips the
  only self-abort, validation).

The mixin layers over any :class:`~repro.htm.system.BaseTMSystem`
subclass; :class:`STMSystem` is the standalone always-software
backend, and :mod:`repro.htm.hytm` builds the hybrid family.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import TxnStmSample
from repro.htm.events import StallRetry
from repro.htm.system import (
    BaseTMSystem,
    CommitResult,
    LoadResult,
    StoreResult,
)
from repro.mem.address import BLOCK_SIZE, block_of
from repro.stm.metadata import StmMetadata

#: fault-injection stage fired on the STM commit plan (see
#: repro.check.faults.STM_COMMIT)
STM_COMMIT_STAGE = "stm-commit"


@dataclass(slots=True)
class _StmTxn:
    """Per-attempt software transaction state."""

    #: private write buffer, byte addr -> byte value (lazy versioning)
    wbuf: dict[int, int] = field(default_factory=dict)
    #: data blocks with buffered writes
    write_blocks: set[int] = field(default_factory=set)
    #: optimistic read set: orec version-word addr -> version at first read
    read_orecs: dict[int, int] = field(default_factory=dict)
    #: orecs covering the write set (bumped at publish)
    write_orecs: set[int] = field(default_factory=set)
    #: orecs whose owner word this transaction holds (progressive)
    owned_orecs: set[int] = field(default_factory=set)
    #: instrumentation instructions charged so far (flushed to stats)
    barrier_instrs: int = 0
    #: progressive fallback: own the footprint instead of validating
    pessimistic: bool = False
    #: progressive fallback: holds the global fallback token
    holds_token: bool = False


class _StmCommitPlan:
    """The STM analogue of RETCON's CommitPlan: just the buffered
    stores as (addr, size, value) runs, no register repairs.  Shaped
    so :meth:`repro.check.oracle.RepairOracle.check_commit` and the
    ``stm-commit`` fault stage consume it unchanged."""

    __slots__ = ("stores", "registers")

    def __init__(self, stores: list[tuple[int, int, int]]) -> None:
        self.stores = stores
        self.registers: list[tuple[int, int]] = []


class _EmptyBuffer:
    @staticmethod
    def entries():
        return ()


class _EmptyRegs:
    @staticmethod
    def get(reg):
        return None


class _StmEngineView:
    """Just enough RetconEngine surface for the oracle's commit check:
    no symbolic store buffer, no symbolic registers."""

    ssb = _EmptyBuffer()
    sregs = _EmptyRegs()


_STM_ENGINE_VIEW = _StmEngineView()


class _CommittedView:
    """A read view of memory with every *other* active transaction's
    eager speculative writes undone (their undo-log pre-images
    overlaid).  The oracle replays an STM commit against this:
    software reads always resolve to architecturally committed values
    (the read barrier dooms or waits out speculative writers), but by
    commit time a fresh hardware transaction may hold dirty bytes the
    replay would otherwise see."""

    __slots__ = ("_memory", "_pre")

    def __init__(self, memory, pre_images) -> None:
        self._memory = memory
        self._pre = [p for p in pre_images if p]

    def read_bytes(self, addr: int, size: int) -> bytes:
        raw = self._memory.read_bytes(addr, size)
        if not self._pre:
            return raw
        out = bytearray(raw)
        for pre in self._pre:
            for i in range(size):
                byte = pre.get(addr + i)
                if byte is not None:
                    out[i] = byte
        return bytes(out)


def _coalesce(wbuf: dict[int, int]) -> list[tuple[int, int, int]]:
    """Collapse a byte write buffer into maximal contiguous
    (addr, size, little-endian value) runs, in address order."""
    stores: list[tuple[int, int, int]] = []
    addrs = sorted(wbuf)
    i, n = 0, len(addrs)
    while i < n:
        start = addrs[i]
        j = i + 1
        while j < n and addrs[j] == addrs[j - 1] + 1:
            j += 1
        data = bytes(wbuf[a] for a in addrs[i:j])
        stores.append((start, len(data), int.from_bytes(data, "little")))
        i = j
    return stores


class STMMixin:
    """Software path + escalation policy, layered over an HTM base.

    Class knobs (overridden by the concrete systems):

    * ``hybrid`` — False: every transaction is software (the pure STM
      backend).  True: transactions start on the inherited hardware
      path and escalate per the retry budget / capacity policy.
    * ``pessimistic_fallback`` — the progressive variant's fallback
      (token-serialized, ownership-acquiring, validation-free).
    """

    hybrid = False
    pessimistic_fallback = False
    #: capacity-aborted transactions escalate to the software slow
    #: path (via the recorded doom reason) rather than rerunning under
    #: OneTM overflow serialization — serializing an STM-bound retry
    #: would needlessly conflict it against every hardware txn
    capacity_serializes = False

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _init_stm(self) -> None:
        """Called by concrete subclasses at the end of __init__."""
        self.meta = StmMetadata(self.config)
        ncores = self.config.ncores
        self._stm_txns: list[_StmTxn | None] = [None] * ncores
        #: sticky per-logical-transaction escalation flag: once a
        #: transaction falls back it stays on the software path until
        #: it commits (cleared on the next fresh begin)
        self._escalated = [False] * ncores
        #: core holding the fallback token (progressive), or None
        self._fallback_owner: int | None = None
        #: blocks drained by the in-progress HTM commit (recorded by
        #: the _on_commit_stores hook, published to orecs afterwards)
        self._hybrid_drained: list[set[int]] = [set() for _ in range(ncores)]
        self._m_stm_fallbacks = None
        self._m_stm_barrier = None
        self._m_stm_subscriptions = None

    def bind_metrics(self, registry) -> None:
        super().bind_metrics(registry)
        self._m_stm_fallbacks = registry.counter("stm.fallbacks")
        self._m_stm_barrier = registry.counter("stm.barrier_instrs")
        self._m_stm_subscriptions = registry.counter(
            "stm.subscription_aborts"
        )

    # ------------------------------------------------------------------
    # Lifecycle: escalation policy
    # ------------------------------------------------------------------
    def begin(self, core: int, restart: bool = False) -> None:
        if not restart:
            self._escalated[core] = False
        super().begin(core, restart)
        ctx = self.ctx[core]
        if self._stm_elects(core, ctx, restart):
            self._stm_begin(core, ctx)

    def _stm_elects(self, core: int, ctx, restart: bool) -> bool:
        """Does this attempt run on the software path?

        Hybrid policy: escalate when the logical transaction already
        escalated, when it has exhausted its HTM retry budget, or when
        the hardware aborted it for capacity (retrying a transaction
        whose footprint exceeds the hardware structures is futile).
        """
        if self._escalated[core]:
            return True
        if ctx.attempts > self.config.retry_budget:
            return True
        return restart and ctx.doom_reason == "capacity"

    def _stm_begin(self, core: int, ctx) -> None:
        ctx.stm = True
        self._stm_txns[core] = _StmTxn(
            pessimistic=self.pessimistic_fallback
        )
        if not self._escalated[core]:
            self._escalated[core] = True
            if self.hybrid:
                # Only count a *fallback* when hardware was tried and
                # gave up; the pure STM backend is software by design.
                self.stats.core(core).stm_fallbacks += 1
                if self.metrics is not None:
                    self._m_stm_fallbacks.inc()
                self._trace(
                    "fallback",
                    core,
                    attempts=ctx.attempts,
                    reason=ctx.doom_reason,
                )

    # ------------------------------------------------------------------
    # Memory operation dispatch
    # ------------------------------------------------------------------
    def load(self, core: int, addr: int, size: int) -> LoadResult:
        ctx = self.ctx[core]
        if ctx.active:
            if ctx.stm:
                return self._stm_load(core, addr, size)
            if self.hybrid and not ctx.subscribed:
                extra = self._subscribe(core)
                result = super().load(core, addr, size)
                return LoadResult(
                    result.value, result.latency + extra, result.sym
                )
        return super().load(core, addr, size)

    def store(self, core, addr, size, value, sym=None) -> StoreResult:
        ctx = self.ctx[core]
        if ctx.active:
            if ctx.stm:
                return self._stm_store(core, addr, size, value)
            if self.hybrid and not ctx.subscribed:
                extra = self._subscribe(core)
                result = super().store(core, addr, size, value, sym)
                return StoreResult(latency=result.latency + extra)
            return super().store(core, addr, size, value, sym)
        result = super().store(core, addr, size, value, sym)
        self._nontx_publish(addr, size)
        return result

    def _subscribe(self, core: int) -> int:
        """Hardware-side begin instrumentation: speculatively load the
        STM clock block at the transaction's first access, so any
        writing software commit dooms it through the normal eager
        conflict machinery."""
        latency = self._eager_block_access(
            core, self.meta.clock_block, write=False
        )
        cost = self.config.stm_subscribe_instrs
        self.stats.core(core).barrier_instrs += cost
        if self.metrics is not None:
            self._m_stm_barrier.inc(cost)
        self.ctx[core].subscribed = True
        return latency + cost

    def _nontx_publish(self, addr: int, size: int) -> None:
        """Strong isolation: a non-transactional store bumps the orec
        versions of the blocks it touches so concurrent software
        validation observes it.  Bookkeeping-only (no latency): the
        data access itself was already charged."""
        meta = self.meta
        mem = self.memory
        first = addr // BLOCK_SIZE
        last = (addr + size - 1) // BLOCK_SIZE
        for blk in range(first, last + 1):
            orec = meta.orec_addr(blk)
            mem.write(orec, mem.read(orec, 8) + 1, 8)

    # ------------------------------------------------------------------
    # Software barriers
    # ------------------------------------------------------------------
    def _ensure_token(self, core: int, txn: _StmTxn) -> int:
        """Progressive fallback serialization: claim the global token
        before the first data access; wait (StallRetry) while another
        fallback holds it."""
        if not txn.pessimistic or txn.holds_token:
            return 0
        owner = self._fallback_owner
        if owner is not None and owner != core:
            raise StallRetry(self.meta.token_block, {owner})
        outcome = self.fabric.acquire(
            core, self.meta.token_block, write=True
        )
        self.memory.write(self.meta.token_addr, core + 1, 8)
        self._fallback_owner = core
        txn.holds_token = True
        return outcome.latency

    def _stm_load(self, core: int, addr: int, size: int) -> LoadResult:
        txn = self._stm_txns[core]
        cfg = self.config
        latency = self._ensure_token(core, txn)
        cost = cfg.stm_read_barrier_instrs
        txn.barrier_instrs += cost
        latency += cost
        fabric = self.fabric
        first = addr // BLOCK_SIZE
        last = (addr + size - 1) // BLOCK_SIZE
        for blk in range(first, last + 1):
            # A remote hardware transaction may hold this block dirty
            # (eager versioning): resolve it so the value we read is
            # architecturally committed.
            writers = fabric._spec_writers.get(blk)
            if writers is not None and (
                len(writers) > 1 or core not in writers
            ):
                self._stm_data_conflict(core, blk, set(writers))
            latency += fabric.acquire(core, blk, write=False).latency
            latency += self._orec_read(core, txn, blk)
        raw = bytearray(self.memory.read_bytes(addr, size))
        if txn.wbuf:
            wbuf = txn.wbuf
            for i in range(size):
                byte = wbuf.get(addr + i)
                if byte is not None:
                    raw[i] = byte
        value = int.from_bytes(raw, "little", signed=True)
        return LoadResult(value=value, latency=latency)

    def _stm_store(
        self, core: int, addr: int, size: int, value: int
    ) -> StoreResult:
        txn = self._stm_txns[core]
        cfg = self.config
        latency = self._ensure_token(core, txn)
        cost = cfg.stm_write_barrier_instrs
        txn.barrier_instrs += cost
        latency += cost
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        wbuf = txn.wbuf
        for i, byte in enumerate(data):
            wbuf[addr + i] = byte
        first = addr // BLOCK_SIZE
        last = (addr + size - 1) // BLOCK_SIZE
        for blk in range(first, last + 1):
            if blk in txn.write_blocks:
                continue
            txn.write_blocks.add(blk)
            orec = self.meta.orec_addr(blk)
            txn.write_orecs.add(orec)
            if txn.pessimistic and orec not in txn.owned_orecs:
                latency += self._own_orec(core, txn, orec)
        return StoreResult(latency=latency)

    def _orec_read(self, core: int, txn: _StmTxn, blk: int) -> int:
        """First read of a block: sample its orec version (optimistic)
        or acquire its owner word (pessimistic)."""
        orec = self.meta.orec_addr(blk)
        if orec in txn.read_orecs or orec in txn.owned_orecs:
            return 0
        if txn.pessimistic:
            return self._own_orec(core, txn, orec)
        latency = self.fabric.acquire(
            core, block_of(orec), write=False
        ).latency
        txn.read_orecs[orec] = self.memory.read(orec, 8)
        return latency

    def _own_orec(self, core: int, txn: _StmTxn, orec: int) -> int:
        """Progressive fallback: write our id into the orec's owner
        word.  Conflicting hardware commits check it and abort."""
        latency = self.fabric.acquire(core, block_of(orec), write=True).latency
        self.memory.write(self.meta.owner_addr(orec), core + 1, 8)
        txn.owned_orecs.add(orec)
        return latency

    def _stm_data_conflict(
        self, core: int, blk: int, writers: set[int]
    ) -> None:
        """A software read found remote eager speculative writers.

        The pessimistic fallback always wins (it must never abort);
        an optimistic software transaction goes through the normal
        contention policy, so it may stall or abort like any other
        requester.
        """
        if self._stm_txns[core].pessimistic:
            for holder in sorted(writers):
                if holder != core and self.ctx[holder].active:
                    self._doom_htm(holder)
        else:
            self._resolve(core, blk, writers)
            self._check_self_doom(core)

    def _doom_htm(self, victim: int) -> None:
        self._doom(victim, reason="subscription")
        if self.metrics is not None:
            self._m_stm_subscriptions.inc()

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def _pre_commit(self, core: int) -> CommitResult:
        ctx = self.ctx[core]
        if ctx.stm:
            return self._stm_pre_commit(core)
        if not self.hybrid:
            return super()._pre_commit(core)
        drained = self._hybrid_drained[core]
        drained.clear()
        if self.pessimistic_fallback:
            spec_written = self.fabric.cores[core].spec_written
            if spec_written:
                self._htm_owner_check(core, spec_written)
        result = super()._pre_commit(core)
        blocks = set(self.fabric.cores[core].spec_written)
        if drained:
            blocks |= drained
            drained.clear()
        if not blocks:
            return result
        extra = self._htm_publish(core, blocks)
        return CommitResult(
            latency=result.latency + extra,
            register_repairs=result.register_repairs,
        )

    def _pre_drain(self, core: int, plan) -> None:
        """Progressive: veto a hardware commit whose buffered stores
        target blocks the pessimistic fallback owns."""
        super()._pre_drain(core, plan)
        if (
            self.pessimistic_fallback
            and not self.ctx[core].stm
            and plan is not None
            and plan.stores
        ):
            self._htm_owner_check(
                core, {block_of(a) for a, _s, _v in plan.stores}
            )

    def _on_commit_stores(self, core: int, stores) -> None:
        super()._on_commit_stores(core, stores)
        if self.hybrid and not self.ctx[core].stm:
            self._hybrid_drained[core].update(
                block_of(a) for a, _s, _v in stores
            )

    def _htm_owner_check(self, core: int, blocks) -> None:
        """Abort (reason "subscription") if any block's orec is owned
        by a pessimistic fallback: the fallback read it and performs
        no validation, so a hardware write would break its snapshot."""
        meta = self.meta
        mem = self.memory
        for orec in {meta.orec_addr(b) for b in blocks}:
            if mem.read(meta.owner_addr(orec), 8) != 0:
                if self.metrics is not None:
                    self._m_stm_subscriptions.inc()
                self._abort_self(core, reason="subscription")

    def _htm_publish(self, core: int, blocks: set[int]) -> int:
        """Hardware-side commit instrumentation: bump the orec version
        of every written block so software validation observes the
        commit.  Charged stm_subscribe_instrs per orec, plus the
        coherence latency of the orec blocks."""
        meta = self.meta
        mem = self.memory
        orecs = sorted({meta.orec_addr(b) for b in blocks})
        cost = len(orecs) * self.config.stm_subscribe_instrs
        latency = cost
        for orec in orecs:
            latency += self.fabric.acquire(
                core, block_of(orec), write=True
            ).latency
            mem.write(orec, mem.read(orec, 8) + 1, 8)
        self.stats.core(core).barrier_instrs += cost
        if self.metrics is not None:
            self._m_stm_barrier.inc(cost)
        return latency

    def _stm_pre_commit(self, core: int) -> CommitResult:
        ctx = self.ctx[core]
        txn = self._stm_txns[core]
        cfg = self.config
        meta = self.meta
        mem = self.memory
        fabric = self.fabric
        latency = 0

        # Commit-time validation (optimistic only): every read orec
        # must still hold the version sampled at first read.
        if txn.read_orecs:
            cost = len(txn.read_orecs) * cfg.stm_validate_instrs
            txn.barrier_instrs += cost
            latency += cost
            for orec, version in txn.read_orecs.items():
                latency += fabric.acquire(
                    core, block_of(orec), write=False
                ).latency
                if mem.read(orec, 8) != version:
                    self._abort_self(core, reason="validation")

        plan = _StmCommitPlan(_coalesce(txn.wbuf))
        if self.fault_injector is not None:
            self.fault_injector.fire(STM_COMMIT_STAGE, None, plan)
        if self.oracle is not None:
            view = _CommittedView(
                mem,
                [
                    other.undo.pre_image()
                    for i, other in enumerate(self.ctx)
                    if i != core and other.active
                ],
            )
            self.oracle.check_commit(
                core, _STM_ENGINE_VIEW, ctx.undo, plan, view
            )

        if plan.stores:
            if self.hybrid:
                # Doom every subscribed hardware transaction *before*
                # writing back: their eager rollback must not clobber
                # our committed bytes.  (Any hardware transaction with
                # speculative state subscribed at its first access.)
                for other, octx in enumerate(self.ctx):
                    if (
                        other != core
                        and octx.active
                        and not octx.stm
                        and octx.subscribed
                        and not octx.doomed
                    ):
                        self._doom_htm(other)
            # Publish: write buffer -> memory (block acquires charged),
            # then write-set orec bumps, then the global clock.
            for blk in sorted(
                {block_of(a) for a, _s, _v in plan.stores}
            ):
                outcome = fabric.acquire(core, blk, write=True)
                latency += max(1, outcome.latency)
                if outcome.invalidated:
                    self._notify_trackers(core, blk, outcome.invalidated)
            for addr, size, value in plan.stores:
                mem.write_bytes(
                    addr,
                    (value & ((1 << (8 * size)) - 1)).to_bytes(
                        size, "little"
                    ),
                )
            cost = len(txn.write_orecs) * cfg.stm_commit_instrs
            txn.barrier_instrs += cost
            latency += cost
            for orec in sorted(txn.write_orecs):
                latency += fabric.acquire(
                    core, block_of(orec), write=True
                ).latency
                mem.write(orec, mem.read(orec, 8) + 1, 8)
            latency += fabric.acquire(
                core, meta.clock_block, write=True
            ).latency
            mem.write(meta.clock_addr, mem.read(meta.clock_addr, 8) + 1, 8)

        self._stm_finalize(core, txn, latency)
        return CommitResult(latency=latency)

    def _stm_finalize(
        self, core: int, txn: _StmTxn, commit_cycles: int
    ) -> None:
        """Successful software commit: record the sample, flush the
        instrumentation counters, release ownership."""
        stats = self.stats
        sample = TxnStmSample(
            read_set=len(txn.read_orecs) or len(txn.owned_orecs),
            write_set=len(txn.write_orecs),
            barrier_instrs=txn.barrier_instrs,
            commit_cycles=commit_cycles,
        )
        stats.record_stm_sample(core, sample)
        core_stats = stats.core(core)
        core_stats.stm_commits += 1
        core_stats.barrier_instrs += txn.barrier_instrs
        if self.metrics is not None and txn.barrier_instrs:
            self._m_stm_barrier.inc(txn.barrier_instrs)
        self._stm_release(core, txn)
        self._stm_txns[core] = None

    def _stm_release(self, core: int, txn: _StmTxn) -> None:
        """Drop pessimistic ownership: zero the owner words and free
        the fallback token (bookkeeping writes, zero-cycle like
        rollback)."""
        mem = self.memory
        meta = self.meta
        for orec in txn.owned_orecs:
            mem.write(meta.owner_addr(orec), 0, 8)
        if txn.holds_token:
            mem.write(meta.token_addr, 0, 8)
            self._fallback_owner = None

    # ------------------------------------------------------------------
    # Abort cleanup
    # ------------------------------------------------------------------
    def _stm_abort_flush(self, core: int) -> None:
        txn = self._stm_txns[core]
        if txn is None:
            return
        self.stats.core(core).barrier_instrs += txn.barrier_instrs
        if self.metrics is not None and txn.barrier_instrs:
            self._m_stm_barrier.inc(txn.barrier_instrs)
        self._stm_release(core, txn)
        self._stm_txns[core] = None

    def _doom(self, core: int, reason: str) -> None:
        was_stm = self.ctx[core].active and self.ctx[core].stm
        super()._doom(core, reason)
        if was_stm:
            self._stm_abort_flush(core)

    def _abort_self(self, core: int, reason: str) -> None:
        ctx = self.ctx[core]
        if ctx.active and ctx.stm:
            self._stm_abort_flush(core)
        super()._abort_self(core, reason)


class STMSystem(STMMixin, BaseTMSystem):
    """The standalone software TM backend: every transaction runs the
    instrumented software path; conflict detection is entirely
    commit-time validation (no speculative state, no capacity limits).
    """

    name = "stm"

    def __init__(self, config, memory, fabric, stats, policy="timestamp"):
        super().__init__(config, memory, fabric, stats, policy)
        self._init_stm()

    def _stm_elects(self, core, ctx, restart):
        return True
