"""Check matrices: what ``repro check`` actually runs.

Two halves, matching the subsystem's promise:

* the **oracle matrix** — a (workload x system) grid executed through
  the experiment engine with ``check=True``, so every point runs with
  the replay-based repair oracle attached and its final state diffed
  against a sequential golden run.  All three signals (workload
  invariants, oracle violations, golden diff) must pass.
* the **fault matrix** — a self-test of the oracle: for every fault
  point in :data:`repro.check.faults.FAULT_POINTS`, a deliberately
  contended microbenchmark is run on the full RETCON system with that
  corruption injected at every commit, and the oracle must report at
  least one violation.  A control trial with no fault injected must
  report none.

The fault microbenchmark is deterministic (fixed seeds, deterministic
scheduler), so even the contention-dependent faults — dropped register
repairs, cleared constraints/equality bits, which only diverge when a
tracked block really was stolen and changed — reproduce exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.check.faults import FAULT_POINTS, STM_COMMIT, FaultInjector
from repro.check.oracle import RepairOracle
from repro.exp.spec import ExperimentSpec, smoke_spec
from repro.isa.instructions import Cond
from repro.isa.program import Assembler, Program
from repro.isa.registers import R1, R2
from repro.mem.memory import MainMemory
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.script import ThreadScript

#: systems whose commits the repair oracle actually replays (the
#: baseline systems never reach the RETCON pre-commit hook but are
#: still golden-diffed by the oracle matrix)
ORACLE_SYSTEMS = ("lazy-vb", "retcon")


def check_spec(
    smoke: bool = False,
    ncores: int = 8,
    seed: int = 1,
) -> ExperimentSpec:
    """The oracle-matrix grid for ``repro check``.

    ``smoke=True`` reuses the CI smoke grid (3 workloads x 3 systems at
    scale 0.1) with checking enabled; the default grid covers more
    workload shapes at a slightly larger scale.
    """
    if smoke:
        base = smoke_spec()
        return ExperimentSpec(
            name="check-smoke",
            description="smoke grid + repair oracle + golden differ",
            workloads=base.workloads,
            systems=base.systems,
            core_counts=base.core_counts,
            seeds=base.seeds,
            scale=base.scale,
            check=True,
        )
    return ExperimentSpec(
        name="check",
        description="oracle matrix: repair oracle + golden differ",
        workloads=(
            "python_opt",
            "genome-sz",
            "kmeans",
            "intruder_opt",
            "vacation_opt",
            "ssca2",
        ),
        systems=("eager",) + ORACLE_SYSTEMS,
        core_counts=(ncores,),
        seeds=(seed,),
        scale=0.25,
        check=True,
    )


# ----------------------------------------------------------------------
# The contended fault microbenchmark
# ----------------------------------------------------------------------
SHARED_ADDR = 4096
PRIVATE_BASE = 8192
PRIVATE_STRIDE = 256


def _sym_txn(threshold: int, private: int) -> Program:
    """Symbolic counter increment with a threshold-guarded marker.

    The branch on the symbolic counter records an interval constraint;
    the taken and fall-through paths write markers to *different*
    private addresses (eagerly — the private block is never
    conflicted), so a commit whose constraint should have failed
    diverges visibly in both control flow and final memory.  The
    4-byte symbolic store gives the SSB a multi-width entry, and the
    symbolic overwrite of an eagerly-stored wide constant leaves
    nonzero bytes under the drain's upper half, so even a truncated
    drain is visible.
    """
    asm = Assembler()
    big = asm.fresh_label("big")
    end = asm.fresh_label("end")
    asm.load(R1, SHARED_ADDR)
    asm.addi(R1, R1, 1)
    asm.store(R1, SHARED_ADDR)
    asm.store(R1, private + 16, size=4)
    asm.store(0x7FFF_FFFF_FFFF, private + 32)
    asm.store(R1, private + 32)
    asm.br(Cond.GT, R1, threshold, big)
    asm.store(111, private)
    asm.jump(end)
    asm.mark(big)
    asm.store(222, private + 8)
    asm.mark(end)
    asm.halt()
    return asm.build()


def _pin_txn(private: int) -> Program:
    """Counter increment whose untrackable use pins the counter.

    ``mul`` cannot be tracked symbolically, so the engine places an
    equality constraint on the counter's block; the product is stored
    privately, making a wrongly-accepted stale value visible.
    """
    asm = Assembler()
    asm.load(R1, SHARED_ADDR)
    asm.addi(R1, R1, 1)
    asm.store(R1, SHARED_ADDR)
    asm.mul(R2, R1, 3)
    asm.store(R2, private + 24)
    asm.halt()
    return asm.build()


def fault_scenario(
    ncores: int = 4, txns_per_core: int = 32
) -> tuple[list[ThreadScript], MainMemory, MachineConfig]:
    """Build the deterministic contended scenario the fault matrix runs.

    Every core hammers one shared counter, alternating the
    symbolic-threshold transaction with the equality-pin transaction.
    Thresholds advance with the core's transaction index so that the
    counter crosses some in-flight threshold throughout the run —
    that keeps interval constraints *live* (violations occur), which
    the constraint-clearing faults need in order to be observable.
    """
    memory = MainMemory()
    memory.write(SHARED_ADDR, 0)
    scripts = []
    for core in range(ncores):
        private = PRIVATE_BASE + core * PRIVATE_STRIDE
        script = ThreadScript()
        for j in range(txns_per_core):
            if j % 2 == 0:
                threshold = ncores * j + core
                script.add_txn(
                    _sym_txn(threshold, private), label="sym"
                )
            else:
                script.add_txn(_pin_txn(private), label="pin")
            script.add_work(2)
        scripts.append(script)
    config = MachineConfig().with_cores(ncores)
    return scripts, memory, config


@dataclass
class FaultTrial:
    """Outcome of one fault-injection run."""

    fault: Optional[str]  # None = control (no injection)
    stage: str
    description: str
    fires: int
    checked_commits: int
    violations: int
    kinds: dict[str, int] = field(default_factory=dict)

    @property
    def caught(self) -> bool:
        """Did the run behave as required?

        An injected fault must produce at least one violation; the
        control run must produce none.
        """
        if self.fault is None:
            return self.violations == 0
        return self.fires > 0 and self.violations > 0


def run_fault_trial(
    fault: Optional[str],
    seed: int = 0,
    ncores: int = 4,
    txns_per_core: int = 32,
) -> FaultTrial:
    """Run the contended scenario with *fault* injected (None = clean).

    The backend follows the fault's stage: RETCON-structure and
    commit-plan faults run on ``retcon``; STM commit-path faults run
    on the ``stm`` backend (the only one that reaches their stage).
    """
    scripts, memory, config = fault_scenario(ncores, txns_per_core)
    point = FAULT_POINTS[fault] if fault is not None else None
    system = "stm" if point is not None and point.stage == STM_COMMIT \
        else "retcon"
    oracle = RepairOracle()
    machine = Machine(
        config,
        system,
        scripts,
        memory,
        label=f"fault:{fault or 'control'}",
        check=oracle,
    )
    injector = None
    if fault is not None:
        injector = FaultInjector(fault, seed=seed)
        machine.system.fault_injector = injector
    machine.run(max_cycles=50_000_000)
    return FaultTrial(
        fault=fault,
        stage=point.stage if point else "-",
        description=point.description if point else "no fault injected",
        fires=injector.fires if injector else 0,
        checked_commits=oracle.checked_commits,
        violations=oracle.total_violations,
        kinds=dict(oracle.summary()["by_kind"]),
    )


def run_fault_matrix(
    faults: Optional[Sequence[str]] = None,
    seed: int = 0,
    ncores: int = 4,
    txns_per_core: int = 32,
) -> list[FaultTrial]:
    """Run the control plus every fault point; return all trials."""
    names = list(faults) if faults is not None else sorted(FAULT_POINTS)
    trials = [
        run_fault_trial(
            None, seed=seed, ncores=ncores, txns_per_core=txns_per_core
        )
    ]
    for name in names:
        trials.append(
            run_fault_trial(
                name, seed=seed, ncores=ncores,
                txns_per_core=txns_per_core,
            )
        )
    return trials
