"""Fault injection: a self-test of the correctness oracle.

An oracle that never fires is indistinguishable from an oracle that
cannot fire.  This module deliberately corrupts the RETCON structures
— symbolic store-buffer entries, symbolic registers, interval
constraints, equality bits, captured initial values, and the commit
plan itself — at well-defined points in the pre-commit sequence, then
the test harness asserts the repair oracle reports each corruption as
an :class:`~repro.check.oracle.OracleViolation`.

Fault points are **enumerable** (the :data:`FAULT_POINTS` registry is
the catalog, mirrored in ``docs/correctness_oracle.md``) and
**seeded**: an injector picks its victim entry with its own
``random.Random(seed)``, so a failing fault trial reproduces exactly.

Two stages, matching the hooks in
:meth:`repro.htm.system.RetconTMSystem._pre_commit`:

* ``pre-validate`` — after lost blocks are reacquired, before the
  engine validates its constraints: corruptions of the engine state
  (SSB, symbolic registers, constraint buffer, IVB).
* ``post-plan`` — after the engine produced its
  :class:`~repro.core.engine.CommitPlan`, before the oracle check and
  the store drain: corruptions of the plan itself (models bugs in the
  drain/repair datapath).

Every ``apply`` function returns True only if it actually mutated
something, so an injector keeps arming itself until a commit with a
corruptible structure comes along.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.engine import CommitPlan, RetconEngine
from repro.mem.address import block_base, block_of

#: (engine, plan-or-None, rng) -> mutated?
ApplyFn = Callable[
    [RetconEngine, Optional[CommitPlan], random.Random], bool
]

PRE_VALIDATE = "pre-validate"
POST_PLAN = "post-plan"
#: fired on the STM commit plan (write-buffer runs) after software
#: validation, before writeback — the software analogue of POST_PLAN
STM_COMMIT = "stm-commit"


@dataclass(frozen=True)
class FaultPoint:
    """One named, documented corruption."""

    name: str
    stage: str
    description: str
    apply: ApplyFn


# ----------------------------------------------------------------------
# pre-validate faults: corrupt the engine structures
# ----------------------------------------------------------------------
def _ssb_value_skew(engine, _plan, rng) -> bool:
    """Skew a buffered store's concrete value (and strip its symbolic
    expression, as a broken tracking datapath would)."""
    entries = engine.ssb.entries()
    if not entries:
        return False
    entry = rng.choice(entries)
    entry.value += 1
    entry.sym = None
    return True


def _ssb_delta_skew(engine, _plan, rng) -> bool:
    """Skew the delta of a symbolic store-buffer entry by +1."""
    entries = [e for e in engine.ssb.entries() if e.sym is not None]
    if not entries:
        return False
    entry = rng.choice(entries)
    entry.sym = entry.sym.shifted(1)
    return True


def _ssb_drop(engine, _plan, rng) -> bool:
    """Silently lose one buffered store."""
    entries = engine.ssb.entries()
    if not entries:
        return False
    engine.ssb.remove(rng.choice(entries).addr)
    return True


def _ssb_addr_shift(engine, _plan, rng) -> bool:
    """Re-home a buffered store at a shifted address."""
    entries = engine.ssb.entries()
    if not entries:
        return False
    entry = rng.choice(entries)
    engine.ssb.remove(entry.addr)
    engine.ssb.put(
        entry.addr + entry.size, entry.size, entry.value, entry.sym
    )
    return True


def _ssb_size_truncate(engine, _plan, rng) -> bool:
    """Halve the width of a multi-byte buffered store."""
    entries = [e for e in engine.ssb.entries() if e.size >= 2]
    if not entries:
        return False
    entry = rng.choice(entries)
    entry.size //= 2
    return True


def _capacity_overflow(engine, _plan, _rng) -> bool:
    """Model a buggy capacity-eviction path: silently evict the
    lowest-addressed SSB entry instead of aborting the transaction.

    A correct capacity overflow aborts (or serializes) the offender;
    an eviction that pretends the store never happened is exactly the
    kind of bookkeeping bug the bounded-buffer code could introduce,
    and the oracle must see the lost store at commit.  Requires two
    entries so the commit still drains something.
    """
    entries = engine.ssb.entries()
    if len(entries) < 2:
        return False
    victim = min(entries, key=lambda entry: entry.addr)
    engine.ssb.remove(victim.addr)
    return True


def _sreg_delta_skew(engine, _plan, rng) -> bool:
    """Skew a symbolic register's delta by +1 (wrong repair value)."""
    symbolic = engine.sregs.symbolic_regs()
    if not symbolic:
        return False
    reg, sym = rng.choice(symbolic)
    engine.sregs.set(reg, sym.shifted(1))
    return True


def _sreg_drop(engine, _plan, rng) -> bool:
    """Forget that a register is symbolic (its stale executed value
    survives the commit unrepaired)."""
    symbolic = engine.sregs.symbolic_regs()
    if not symbolic:
        return False
    reg, _sym = rng.choice(symbolic)
    engine.sregs.set(reg, None)
    return True


def _constraint_clear(engine, _plan, _rng) -> bool:
    """Discard every interval constraint before validation."""
    if len(engine.constraints) == 0:
        return False
    engine.constraints.clear()
    return True


def _equality_clear(engine, _plan, _rng) -> bool:
    """Discard every compressed equality bit before validation."""
    cleared = False
    for entry in engine.ivb.entries():
        if entry.equality_words:
            entry.equality_words.clear()
            cleared = True
    return cleared


def _ivb_initial_skew(engine, _plan, rng) -> bool:
    """Corrupt the captured initial bytes under a live symbolic root.

    Targets a non-lost tracked block that roots a symbolic expression,
    so the engine evaluates repairs against the corrupted observation
    while the replay reads the true (unchanged) memory value.
    """
    roots = [e.sym.root for e in engine.ssb.entries() if e.sym is not None]
    roots += [sym.root for _reg, sym in engine.sregs.symbolic_regs()]
    candidates = []
    for addr, size in roots:
        entry = engine.ivb.get(block_of(addr))
        if entry is not None and not entry.lost:
            candidates.append((entry, addr, size))
    if not candidates:
        return False
    entry, addr, _size = rng.choice(candidates)
    offset = addr - block_base(entry.block)
    raw = bytearray(entry.initial_bytes)
    raw[offset] = (raw[offset] + 1) % 256
    entry.initial_bytes = bytes(raw)
    return True


# ----------------------------------------------------------------------
# post-plan faults: corrupt the commit plan
# ----------------------------------------------------------------------
def _plan_store_skew(_engine, plan, rng) -> bool:
    """Skew one drained store's final value by +1."""
    if plan is None or not plan.stores:
        return False
    i = rng.randrange(len(plan.stores))
    addr, size, value = plan.stores[i]
    plan.stores[i] = (addr, size, value + 1)
    return True


def _plan_store_drop(_engine, plan, rng) -> bool:
    """Drop one store from the drain list."""
    if plan is None or not plan.stores:
        return False
    del plan.stores[rng.randrange(len(plan.stores))]
    return True


def _plan_store_misdirect(_engine, plan, rng) -> bool:
    """Drain one store to a shifted address."""
    if plan is None or not plan.stores:
        return False
    i = rng.randrange(len(plan.stores))
    addr, size, value = plan.stores[i]
    plan.stores[i] = (addr + size, size, value)
    return True


def _plan_reg_skew(_engine, plan, rng) -> bool:
    """Skew one register repair's value by +1."""
    if plan is None or not plan.registers:
        return False
    i = rng.randrange(len(plan.registers))
    reg, value = plan.registers[i]
    plan.registers[i] = (reg, value + 1)
    return True


def _plan_reg_drop(_engine, plan, rng) -> bool:
    """Drop one register repair (stale register survives commit)."""
    if plan is None or not plan.registers:
        return False
    del plan.registers[rng.randrange(len(plan.registers))]
    return True


FAULT_POINTS: dict[str, FaultPoint] = {
    point.name: point
    for point in (
        FaultPoint(
            "ssb-value-skew", PRE_VALIDATE,
            "buffered store's concrete value +1, symbolic expr dropped",
            _ssb_value_skew,
        ),
        FaultPoint(
            "ssb-delta-skew", PRE_VALIDATE,
            "symbolic store expression [root]+d becomes [root]+d+1",
            _ssb_delta_skew,
        ),
        FaultPoint(
            "ssb-drop", PRE_VALIDATE,
            "one buffered store silently lost",
            _ssb_drop,
        ),
        FaultPoint(
            "ssb-addr-shift", PRE_VALIDATE,
            "one buffered store re-homed at addr+size",
            _ssb_addr_shift,
        ),
        FaultPoint(
            "ssb-size-truncate", PRE_VALIDATE,
            "one buffered store's width halved",
            _ssb_size_truncate,
        ),
        FaultPoint(
            "capacity-overflow", PRE_VALIDATE,
            "bounded SSB silently evicts its lowest-addressed entry",
            _capacity_overflow,
        ),
        FaultPoint(
            "sreg-delta-skew", PRE_VALIDATE,
            "symbolic register [root]+d becomes [root]+d+1",
            _sreg_delta_skew,
        ),
        FaultPoint(
            "sreg-drop", PRE_VALIDATE,
            "symbolic register demoted to concrete (no repair emitted)",
            _sreg_drop,
        ),
        FaultPoint(
            "constraint-clear", PRE_VALIDATE,
            "interval constraint buffer emptied before validation",
            _constraint_clear,
        ),
        FaultPoint(
            "equality-clear", PRE_VALIDATE,
            "IVB equality bits cleared before validation",
            _equality_clear,
        ),
        FaultPoint(
            "ivb-initial-skew", PRE_VALIDATE,
            "captured initial byte under a symbolic root corrupted",
            _ivb_initial_skew,
        ),
        FaultPoint(
            "plan-store-skew", POST_PLAN,
            "one planned drain value +1",
            _plan_store_skew,
        ),
        FaultPoint(
            "plan-store-drop", POST_PLAN,
            "one planned drain dropped",
            _plan_store_drop,
        ),
        FaultPoint(
            "plan-store-misdirect", POST_PLAN,
            "one planned drain redirected to addr+size",
            _plan_store_misdirect,
        ),
        FaultPoint(
            "plan-reg-skew", POST_PLAN,
            "one register repair value +1",
            _plan_reg_skew,
        ),
        FaultPoint(
            "plan-reg-drop", POST_PLAN,
            "one register repair dropped",
            _plan_reg_drop,
        ),
        FaultPoint(
            "stm-store-skew", STM_COMMIT,
            "one STM write-buffer run's committed value +1",
            _plan_store_skew,
        ),
        FaultPoint(
            "stm-store-drop", STM_COMMIT,
            "one STM write-buffer run silently lost at writeback",
            _plan_store_drop,
        ),
    )
}


class FaultInjector:
    """Applies one named fault point during pre-commit.

    Installed on a :class:`~repro.htm.system.RetconTMSystem` via its
    ``fault_injector`` attribute; the system calls :meth:`fire` at both
    stages of every pre-commit.  By default the fault is injected on
    every eligible commit (``max_fires=None``); bound it to study a
    single corruption.
    """

    def __init__(
        self,
        fault: str,
        seed: int = 0,
        max_fires: Optional[int] = None,
    ) -> None:
        if fault not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {fault!r}; choose from "
                f"{sorted(FAULT_POINTS)}"
            )
        self.point = FAULT_POINTS[fault]
        self.rng = random.Random(seed)
        self.max_fires = max_fires
        self.fires = 0

    def fire(
        self,
        stage: str,
        engine: RetconEngine,
        plan: Optional[CommitPlan],
    ) -> None:
        if stage != self.point.stage:
            return
        if self.max_fires is not None and self.fires >= self.max_fires:
            return
        if self.point.apply(engine, plan, self.rng):
            self.fires += 1
