"""Golden-run differencing: sequential execution as a state oracle.

The second pillar of the correctness subsystem (after the replay
oracle): run the exact same generated workload *sequentially* — one
core, every thread's transactions back to back, which trivially cannot
lose updates or commit unserializably — then diff the parallel run's
final state against it.

Two comparison levels:

* **invariants** — every workload-level invariant (hashtable sizes,
  refcounts, queue totals, conservation sums; see
  :class:`repro.workloads.base.GeneratedWorkload`) is evaluated on
  both final memories.  The golden run must pass all of them, the
  parallel run must pass all of them, and the two outcomes must agree
  per invariant.  This is the default pass/fail signal: it is valid
  for every workload, including those whose final memory bytes depend
  on the (legitimate) serialization order.
* **memory** — a byte-level diff of the two final memories, reported
  as differing block/byte counts and a bounded sample of differing
  addresses.  For order-sensitive workloads this is informational; for
  workloads whose transactions commute (``strict_memory=True``) any
  difference is a failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mem.address import BLOCK_SIZE, block_base, block_of
from repro.mem.memory import MainMemory
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.script import concatenate
from repro.workloads.base import GeneratedWorkload


@dataclass
class GoldenDiff:
    """Outcome of diffing a parallel run against the golden run."""

    blocks_compared: int = 0
    blocks_differing: int = 0
    bytes_differing: int = 0
    #: bounded sample of differing byte addresses
    sample_addrs: list[int] = field(default_factory=list)
    #: invariants the golden (sequential) run failed — a workload bug
    golden_failures: list[str] = field(default_factory=list)
    #: invariants the parallel run failed — a TM-system bug
    parallel_failures: list[str] = field(default_factory=list)
    strict_memory: bool = False

    @property
    def memory_identical(self) -> bool:
        return self.bytes_differing == 0

    @property
    def ok(self) -> bool:
        if self.golden_failures or self.parallel_failures:
            return False
        if self.strict_memory and not self.memory_identical:
            return False
        return True

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "blocks_compared": self.blocks_compared,
            "blocks_differing": self.blocks_differing,
            "bytes_differing": self.bytes_differing,
            "sample_addrs": list(self.sample_addrs),
            "golden_failures": list(self.golden_failures),
            "parallel_failures": list(self.parallel_failures),
            "strict_memory": self.strict_memory,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GoldenDiff":
        return cls(
            blocks_compared=data["blocks_compared"],
            blocks_differing=data["blocks_differing"],
            bytes_differing=data["bytes_differing"],
            sample_addrs=list(data.get("sample_addrs", ())),
            golden_failures=list(data["golden_failures"]),
            parallel_failures=list(data["parallel_failures"]),
            strict_memory=data.get("strict_memory", False),
        )


def run_golden(
    generated: GeneratedWorkload,
    config: Optional[MachineConfig] = None,
) -> MainMemory:
    """Execute the workload's total work on one core; return its
    final memory (the golden image)."""
    config = (config or MachineConfig()).with_cores(1)
    machine = Machine(
        config,
        "eager",
        [concatenate(generated.scripts)],
        generated.memory.clone(),
        label="golden",
    )
    machine.run()
    return machine.memory


def diff_memories(
    golden: MainMemory,
    parallel: MainMemory,
    max_samples: int = 16,
) -> tuple[int, int, int, list[int]]:
    """Byte-diff two memories over the union of their touched blocks.

    Returns ``(blocks_compared, blocks_differing, bytes_differing,
    sample_addrs)``.

    Blocks in the STM metadata region (at or above
    :data:`repro.stm.metadata.STM_META_BASE`) are excluded: orec
    versions, the global clock, and the fallback token are simulator
    bookkeeping whose final values legitimately depend on the
    schedule (abort counts), and single-core reference runs don't
    materialize them at all.  Workload data never lives up there.
    """
    from repro.stm.metadata import STM_META_BASE

    meta_block = block_of(STM_META_BASE)
    blocks = sorted(
        block
        for block in (
            set(golden.touched_blocks()) | set(parallel.touched_blocks())
        )
        if block < meta_block
    )
    blocks_differing = 0
    bytes_differing = 0
    samples: list[int] = []
    for block in blocks:
        a = golden.read_block(block)
        b = parallel.read_block(block)
        if a == b:
            continue
        blocks_differing += 1
        base = block_base(block)
        for offset in range(BLOCK_SIZE):
            if a[offset] != b[offset]:
                bytes_differing += 1
                if len(samples) < max_samples:
                    samples.append(base + offset)
    return len(blocks), blocks_differing, bytes_differing, samples


def golden_diff(
    generated: GeneratedWorkload,
    parallel_memory: MainMemory,
    config: Optional[MachineConfig] = None,
    golden_memory: Optional[MainMemory] = None,
    strict_memory: bool = False,
) -> GoldenDiff:
    """Diff *parallel_memory* against the workload's golden run.

    Pass ``golden_memory`` (from a prior :func:`run_golden`) to avoid
    re-running the sequential execution.
    """
    if golden_memory is None:
        golden_memory = run_golden(generated, config)

    compared, blocks_diff, bytes_diff, samples = diff_memories(
        golden_memory, parallel_memory
    )
    golden_failures = [
        inv.name
        for inv in generated.check_invariants(golden_memory)
        if not inv.ok
    ]
    parallel_failures = [
        inv.name
        for inv in generated.check_invariants(parallel_memory)
        if not inv.ok
    ]
    return GoldenDiff(
        blocks_compared=compared,
        blocks_differing=blocks_diff,
        bytes_differing=bytes_diff,
        sample_addrs=samples,
        golden_failures=golden_failures,
        parallel_failures=parallel_failures,
        strict_memory=strict_memory,
    )
