"""The correctness-oracle subsystem.

Three pillars (see ``docs/correctness_oracle.md``):

* :mod:`repro.check.oracle` — the replay-based repair oracle: every
  RETCON commit is re-executed by a reference interpreter against the
  commit-time memory image and the repaired state must match byte for
  byte.
* :mod:`repro.check.golden` — the golden-run differ: the parallel
  run's final state is checked against a sequential execution of the
  same workload.
* :mod:`repro.check.faults` — the fault injector: seeded, enumerable
  corruptions of the RETCON structures prove the oracle detects the
  bug classes it claims to.

:mod:`repro.check.matrix` orchestrates all three for ``repro check``.
"""

from repro.check.faults import FAULT_POINTS, FaultInjector, FaultPoint
from repro.check.golden import GoldenDiff, diff_memories, golden_diff, run_golden
from repro.check.oracle import OracleError, OracleViolation, RepairOracle
from repro.check.replay import ReplayLimitExceeded, ReplayResult, replay_program

__all__ = [
    "FAULT_POINTS",
    "FaultInjector",
    "FaultPoint",
    "GoldenDiff",
    "OracleError",
    "OracleViolation",
    "RepairOracle",
    "ReplayLimitExceeded",
    "ReplayResult",
    "diff_memories",
    "golden_diff",
    "replay_program",
    "run_golden",
]
