"""A concrete reference interpreter for transaction replay.

The repair oracle validates RETCON's central claim — commit-time
symbolic repair is equivalent to instruction replay (paper §1) — by
actually performing the replay the hardware avoids: re-executing a
committing transaction's program against the values the locations hold
*at commit time* and comparing the outcome with the repaired state.

The interpreter here is deliberately independent of the simulator's
core (:mod:`repro.sim.cpu`): it shares only the pure instruction
semantics (:func:`repro.isa.instructions.apply_op`,
:func:`~repro.isa.instructions.evaluate_cond`), so a bug in the core's
transactional plumbing cannot hide in the oracle too.  It performs no
symbolic tracking, no coherence, no buffering — just architectural
semantics over a byte-level read function plus a private write overlay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.isa.instructions import (
    Bcc,
    Branch,
    Cmp,
    Halt,
    Imm,
    Jump,
    Load,
    Mov,
    Movi,
    Nop,
    Op,
    Reg,
    Store,
    apply_op,
    evaluate_cond,
)
from repro.isa.program import Program

#: reads *size* raw bytes at *addr* from the underlying memory image
ReadFn = Callable[[int, int], bytes]


class ReplayLimitExceeded(RuntimeError):
    """The replay ran longer than its instruction budget.

    Reaching the budget means replayed control flow diverged badly
    enough to loop (the original execution terminated, or it would
    never have committed) — the caller reports it as a violation
    rather than spinning forever.
    """


@dataclass
class ReplayResult:
    """The architectural outcome of one replayed transaction."""

    #: final value of every architectural register
    regs: list[int]
    #: byte address -> byte value for every byte the replay stored
    overlay: dict[int, int] = field(default_factory=dict)
    #: instruction indices in execution order
    pc_trace: list[int] = field(default_factory=list)
    #: instructions executed (== len(pc_trace))
    steps: int = 0

    def read_overlay(self, addr: int, size: int) -> Optional[int]:
        """The replayed stores' value for [addr, addr+size), if fully
        covered by the overlay (little-endian, signed)."""
        raw = bytearray()
        for a in range(addr, addr + size):
            byte = self.overlay.get(a)
            if byte is None:
                return None
            raw.append(byte)
        return int.from_bytes(bytes(raw), "little", signed=True)


def replay_program(
    program: Program,
    initial_regs: list[int],
    read_fn: ReadFn,
    max_steps: int = 1_000_000,
) -> ReplayResult:
    """Re-execute *program* from *initial_regs* over *read_fn*.

    Loads read the replay's own overlay first (store-to-load
    forwarding within the transaction), then fall through to
    ``read_fn``; stores go only to the overlay, never to the
    underlying memory.  Returns the final registers, the overlay, and
    the executed pc trace.  Raises :class:`ReplayLimitExceeded` if the
    program fails to terminate within *max_steps* instructions.
    """
    regs = list(initial_regs)
    result = ReplayResult(regs=regs)
    overlay = result.overlay
    cc_lhs = cc_rhs = 0
    cc_valid = False
    pc = 0

    def read(addr: int, size: int) -> int:
        raw = bytearray(read_fn(addr, size))
        for i in range(size):
            byte = overlay.get(addr + i)
            if byte is not None:
                raw[i] = byte
        return int.from_bytes(bytes(raw), "little", signed=True)

    def write(addr: int, value: int, size: int) -> None:
        mask = (1 << (8 * size)) - 1
        for i, byte in enumerate((value & mask).to_bytes(size, "little")):
            overlay[addr + i] = byte

    def operand(op) -> int:
        if isinstance(op, Reg):
            return regs[op]
        assert isinstance(op, Imm)
        return op.value

    def effective_addr(inst) -> int:
        if inst.base is None:
            return inst.addr
        return regs[inst.base] + inst.disp

    while pc < len(program):
        if result.steps >= max_steps:
            raise ReplayLimitExceeded(
                f"replay exceeded {max_steps} instructions at pc={pc}"
            )
        inst = program.instructions[pc]
        result.pc_trace.append(pc)
        result.steps += 1
        next_pc = pc + 1

        if isinstance(inst, Load):
            regs[inst.rd] = read(effective_addr(inst), inst.size)
        elif isinstance(inst, Store):
            write(effective_addr(inst), operand(inst.src), inst.size)
        elif isinstance(inst, Op):
            regs[inst.rd] = apply_op(
                inst.op, regs[inst.rs1], operand(inst.src2)
            )
        elif isinstance(inst, Mov):
            regs[inst.rd] = regs[inst.rs]
        elif isinstance(inst, Movi):
            regs[inst.rd] = inst.value
        elif isinstance(inst, Cmp):
            cc_lhs = regs[inst.rs1]
            cc_rhs = operand(inst.src2)
            cc_valid = True
        elif isinstance(inst, Branch):
            if evaluate_cond(inst.cond, regs[inst.rs1], operand(inst.src2)):
                next_pc = program.target(inst.target)
        elif isinstance(inst, Bcc):
            if not cc_valid:
                raise RuntimeError("replay: Bcc before any Cmp")
            if evaluate_cond(inst.cond, cc_lhs, cc_rhs):
                next_pc = program.target(inst.target)
        elif isinstance(inst, Jump):
            next_pc = program.target(inst.target)
        elif isinstance(inst, Nop):
            pass
        elif isinstance(inst, Halt):
            next_pc = len(program)
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown instruction: {inst!r}")

        pc = next_pc

    return result
