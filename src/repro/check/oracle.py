"""The repair oracle: replay-based validation of RETCON commits.

RETCON's correctness argument (paper §1, §4) is that the commit-time
repair — re-deriving buffered stores and register values from freshly
reacquired inputs via symbolic expressions and constraints — produces
exactly the state that *re-executing* the transaction against those
inputs would produce.  The oracle checks that equivalence on every
commit it observes:

1. While a transaction runs, the core records its program, its
   initial register snapshot, and the executed instruction trace
   (:meth:`RepairOracle.on_txn_begin` / :meth:`~RepairOracle.on_instruction`).
2. At pre-commit, after the engine validated its constraints and
   produced a :class:`~repro.core.engine.CommitPlan`, the oracle
   replays the recorded program with a reference interpreter
   (:mod:`repro.check.replay`) against the commit-time memory image:
   reacquired blocks read their fresh values, blocks the transaction
   wrote eagerly read their undo-log pre-image, everything else reads
   architectural memory.
3. It then asserts, byte for byte: the replayed control-flow path
   matches the executed one (the constraint set really did pin every
   branch), every buffered store drains the value the replay computed,
   no drained byte lacks a replayed store, every register repair
   matches the replayed register, and — after the core applies the
   repairs — the full architectural register file matches the replay.

Divergences become structured :class:`OracleViolation` reports with
core/transaction/expression context; ``strict=True`` escalates the
first one to an :class:`OracleError`.

The oracle is pull-free: it holds no reference to the machine and is
driven entirely by the hooks above, so it attaches to any
:class:`~repro.htm.system.RetconTMSystem`-derived system.  (It is not
meaningful for ``retcon-fwd``, whose forwarded speculative values are
legitimately invisible to a committed-state replay.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.check.replay import (
    ReplayLimitExceeded,
    ReplayResult,
    replay_program,
)
from repro.isa.program import Program
from repro.mem.address import block_of


@dataclass(frozen=True)
class OracleViolation:
    """One detected divergence between repair and replay."""

    #: control-flow | store-drain | phantom-store | register-repair |
    #: register-final | replay-error
    kind: str
    core: int
    txn_label: str
    #: expression/address context: expected/actual values, addresses,
    #: instruction indices, symbolic expression reprs, ...
    detail: dict = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return (
            f"[core {self.core} txn={self.txn_label}] {self.kind}: {extra}"
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "core": self.core,
            "txn_label": self.txn_label,
            "detail": {k: repr(v) for k, v in self.detail.items()},
        }


class OracleError(AssertionError):
    """Raised in strict mode on the first violation."""

    def __init__(self, violation: OracleViolation) -> None:
        super().__init__(str(violation))
        self.violation = violation


@dataclass
class _TxnRecord:
    """What the oracle remembers about one in-flight transaction."""

    program: Program
    label: str
    regs0: list[int]
    pc_trace: list[int] = field(default_factory=list)
    replay: Optional[ReplayResult] = None


class RepairOracle:
    """Validates every observed RETCON commit against a replay."""

    def __init__(
        self,
        strict: bool = False,
        max_violations: int = 100,
        replay_max_steps: int = 1_000_000,
    ) -> None:
        self.strict = strict
        self.max_violations = max_violations
        self.replay_max_steps = replay_max_steps
        self.violations: list[OracleViolation] = []
        #: violations beyond ``max_violations`` are counted, not stored
        self.suppressed = 0
        self.checked_commits = 0
        self._records: dict[int, _TxnRecord] = {}

    # ------------------------------------------------------------------
    # Recording hooks (driven by the core)
    # ------------------------------------------------------------------
    def on_txn_begin(
        self, core: int, program: Program, label: str, regs: list[int]
    ) -> None:
        """A transaction attempt started (also called on restart)."""
        self._records[core] = _TxnRecord(
            program=program, label=label, regs0=list(regs)
        )

    def on_instruction(self, core: int, pc: int) -> None:
        """The core completed the instruction at *pc*."""
        record = self._records.get(core)
        if record is not None:
            record.pc_trace.append(pc)

    def on_abort(self, core: int) -> None:
        """The attempt died; discard its recording."""
        self._records.pop(core, None)

    # ------------------------------------------------------------------
    # Commit-time checks (driven by the TM system / core)
    # ------------------------------------------------------------------
    def check_commit(self, core, engine, undo, plan, memory) -> None:
        """Replay the committing transaction and diff it against *plan*.

        Called by the TM system after constraint validation produced
        the commit plan, before any store drains.  *memory* is the
        architectural memory at that instant: reacquired blocks hold
        their fresh values, this transaction's eager stores are in
        place (the replay reads through the undo-log pre-image for
        those), and the buffered stores have not drained yet.
        """
        record = self._records.get(core)
        if record is None:
            return  # system used without core recording hooks
        self.checked_commits += 1

        pre_image = undo.pre_image()

        def read_fn(addr: int, size: int) -> bytes:
            raw = bytearray(memory.read_bytes(addr, size))
            for i in range(size):
                byte = pre_image.get(addr + i)
                if byte is not None:
                    raw[i] = byte
            return bytes(raw)

        try:
            replay = replay_program(
                record.program,
                record.regs0,
                read_fn,
                max_steps=self.replay_max_steps,
            )
        except (ReplayLimitExceeded, RuntimeError) as exc:
            self._report(
                "replay-error", core, record.label, error=str(exc)
            )
            return
        record.replay = replay

        # 1. Control flow: the constraint set must have pinned every
        # branch, so the replay follows the executed path exactly.
        if replay.pc_trace != record.pc_trace:
            diverge = _first_divergence(record.pc_trace, replay.pc_trace)
            self._report(
                "control-flow",
                core,
                record.label,
                executed_len=len(record.pc_trace),
                replayed_len=len(replay.pc_trace),
                first_divergence=diverge,
            )

        # 2. Register repairs: each repaired value must equal the
        # replayed register.
        for reg, value in plan.registers:
            if replay.regs[reg] != value:
                self._report(
                    "register-repair",
                    core,
                    record.label,
                    reg=reg,
                    repaired=value,
                    replayed=replay.regs[reg],
                    sym=repr(engine.sregs.get(reg)),
                )

        # 3. Stores: every byte the replay wrote must end up with the
        # replayed value once the plan drains (bytes outside the plan
        # were written eagerly and are already in memory), and every
        # planned byte must have a replayed store behind it.
        plan_bytes: dict[int, int] = {}
        plan_syms: dict[int, str] = {}
        for addr, size, value in plan.stores:
            mask = (1 << (8 * size)) - 1
            for i, byte in enumerate(
                (value & mask).to_bytes(size, "little")
            ):
                plan_bytes[addr + i] = byte
        for entry in engine.ssb.entries():
            for a in range(entry.addr, entry.end):
                plan_syms[a] = repr(entry.sym)

        for addr, byte in replay.overlay.items():
            final = plan_bytes.get(addr)
            if final is None:
                final = memory.read_bytes(addr, 1)[0]
            if final != byte:
                self._report(
                    "store-drain",
                    core,
                    record.label,
                    addr=addr,
                    block=block_of(addr),
                    committed_byte=final,
                    replayed_byte=byte,
                    sym=plan_syms.get(addr),
                )
        for addr, byte in plan_bytes.items():
            if addr not in replay.overlay:
                self._report(
                    "phantom-store",
                    core,
                    record.label,
                    addr=addr,
                    block=block_of(addr),
                    committed_byte=byte,
                    sym=plan_syms.get(addr),
                )

    def on_committed(self, core: int, regs: list[int]) -> None:
        """The commit succeeded and register repairs were applied:
        the full architectural register file must match the replay."""
        record = self._records.pop(core, None)
        if record is None or record.replay is None:
            return
        for reg, replayed in enumerate(record.replay.regs):
            if regs[reg] != replayed:
                self._report(
                    "register-final",
                    core,
                    record.label,
                    reg=reg,
                    committed=regs[reg],
                    replayed=replayed,
                )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(self, kind: str, core: int, label: str, **detail) -> None:
        violation = OracleViolation(
            kind=kind, core=core, txn_label=label, detail=detail
        )
        if len(self.violations) < self.max_violations:
            self.violations.append(violation)
        else:
            self.suppressed += 1
        if self.strict:
            raise OracleError(violation)

    @property
    def total_violations(self) -> int:
        return len(self.violations) + self.suppressed

    @property
    def ok(self) -> bool:
        return self.total_violations == 0

    def summary(self) -> dict:
        by_kind: dict[str, int] = {}
        for violation in self.violations:
            by_kind[violation.kind] = by_kind.get(violation.kind, 0) + 1
        return {
            "checked_commits": self.checked_commits,
            "violations": self.total_violations,
            "by_kind": by_kind,
        }


def _first_divergence(
    executed: list[int], replayed: list[int]
) -> Optional[tuple[int, Optional[int], Optional[int]]]:
    """(index, executed pc, replayed pc) at the first mismatch."""
    for i in range(max(len(executed), len(replayed))):
        a = executed[i] if i < len(executed) else None
        b = replayed[i] if i < len(replayed) else None
        if a != b:
            return (i, a, b)
    return None
