"""Typed metrics: counters, gauges, and histograms in one registry.

Design constraints (mirroring the simulator's hot-path discipline):

* **Zero cost when absent.**  Every emission site guards with a single
  ``if self.metrics is not None`` attribute check — a run without a
  registry pays one pointer compare per *transaction boundary*, never
  per instruction.
* **Boundary-only flushes.**  Emission follows the same protocol as
  :class:`repro.sim.stats.CoreStats`: per-attempt state accumulates in
  core-local variables and reaches the registry only at commit/abort
  (histograms via :meth:`repro.sim.stats.MachineStats.record_txn`,
  counters at the TM system's lifecycle events).  Machine-level
  totals (cache spills, evictions, cycle breakdown) are collected
  once, at end of run, by :mod:`repro.obs.collect`.
* **Bound handles on attach.**  Hot emitters cache their
  :class:`Counter` handles when the registry is attached (see
  ``BaseTMSystem.bind_metrics``) so the per-event cost is one integer
  add, not a registry lookup.

Histograms use power-of-two buckets: ``observe(v)`` lands ``v`` in
bucket ``v.bit_length()``, i.e. bucket *i* covers ``[2**(i-1), 2**i)``
— cheap, allocation-free, and plenty for cycle-count distributions.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

#: label sets are stored as a sorted tuple of (key, value) pairs
LabelKey = tuple

_HIST_BUCKETS = 40  # 2**39 cycles ≈ half a trillion; beyond any run


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> Union[int, float]:
        return self.value


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def snapshot(self):
        return self.value


class Histogram:
    """Power-of-two-bucketed distribution of non-negative integers."""

    __slots__ = ("name", "labels", "count", "total", "minimum", "maximum",
                 "buckets")
    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0
        self.minimum: Optional[int] = None
        self.maximum = 0
        self.buckets = [0] * _HIST_BUCKETS

    def observe(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name}: negative {value}")
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.buckets[min(int(value).bit_length(), _HIST_BUCKETS - 1)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> int:
        """Upper bound of the bucket holding the q-th percentile
        (0 < q <= 100); 0 when empty."""
        if not 0 < q <= 100:
            raise ValueError(f"percentile {q} out of (0, 100]")
        if self.count == 0:
            return 0
        threshold = self.count * q / 100.0
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= threshold:
                return (1 << i) - 1 if i else 0
        return self.maximum

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum or 0,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """All metrics of one run, keyed by (name, labels).

    ``counter``/``gauge``/``histogram`` create on first use and return
    the same object afterwards; asking for an existing name with a
    different type raises (one name, one type).  Convenience one-shot
    forms (``inc``/``set``/``observe``) exist for cold paths; hot
    paths should hold the handle.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelKey], Metric] = {}

    # -- typed accessors ---------------------------------------------------
    def _get(self, cls, name: str, labels: dict) -> Metric:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1])
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- one-shot conveniences (cold paths) --------------------------------
    def inc(self, name: str, n: int = 1, **labels) -> None:
        self.counter(name, **labels).inc(n)

    def set(self, name: str, value, **labels) -> None:
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: int, **labels) -> None:
        self.histogram(name, **labels).observe(value)

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        for _key, metric in sorted(self._metrics.items()):
            yield metric

    def get(self, name: str, **labels) -> Optional[Metric]:
        return self._metrics.get((name, _label_key(labels)))

    def snapshot(self) -> dict:
        """JSON-safe dump: ``{"name{k=v,...}": value-or-hist-dict}``."""
        out = {}
        for metric in self:
            key = metric.name
            if metric.labels:
                inner = ",".join(f"{k}={v}" for k, v in metric.labels)
                key = f"{metric.name}{{{inner}}}"
            out[key] = metric.snapshot()
        return out

    def render(self) -> str:
        """ASCII table of every metric, grouped by type."""
        lines = []
        counters = [m for m in self if m.kind == "counter"]
        gauges = [m for m in self if m.kind == "gauge"]
        hists = [m for m in self if m.kind == "histogram"]

        def label_str(metric: Metric) -> str:
            if not metric.labels:
                return metric.name
            inner = ",".join(f"{k}={v}" for k, v in metric.labels)
            return f"{metric.name}{{{inner}}}"

        if counters:
            lines.append("counters:")
            width = max(len(label_str(m)) for m in counters)
            for m in counters:
                lines.append(f"  {label_str(m):{width}s}  {m.value}")
        if gauges:
            lines.append("gauges:")
            width = max(len(label_str(m)) for m in gauges)
            for m in gauges:
                lines.append(f"  {label_str(m):{width}s}  {m.value}")
        if hists:
            lines.append("histograms:")
            width = max(len(label_str(m)) for m in hists)
            for m in hists:
                snap = m.snapshot()
                lines.append(
                    f"  {label_str(m):{width}s}  n={snap['count']} "
                    f"mean={snap['mean']:.1f} min={snap['min']} "
                    f"p50<={snap['p50']} p99<={snap['p99']} "
                    f"max={snap['max']}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"


def validate_latency_histogram(snapshot: dict, name: str = "") -> None:
    """Raise ``ValueError`` unless *snapshot* is a structurally valid
    :meth:`Histogram.snapshot` dict (the form persisted inside trace
    artifacts and consumed by the service-traffic figure).

    Checks the shape CI's service-smoke job schema-validates: every
    summary field present with the right type, internally consistent
    (``min <= max``, ``p50 <= p99``, ``mean == total/count``), and
    non-negative.  ``p99`` may exceed ``max`` — percentiles report the
    upper bound of their power-of-two bucket, not the sample.
    """

    def fail(message: str) -> None:
        where = f" {name!r}" if name else ""
        raise ValueError(f"invalid latency histogram{where}: {message}")

    if not isinstance(snapshot, dict):
        fail(f"expected a snapshot dict, got {type(snapshot).__name__}")
    for key in ("count", "total", "min", "max", "p50", "p99"):
        value = snapshot.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            fail(f"{key!r} must be an integer, got {value!r}")
        if value < 0:
            fail(f"{key!r} must be non-negative, got {value}")
    mean = snapshot.get("mean")
    if not isinstance(mean, (int, float)) or isinstance(mean, bool):
        fail(f"'mean' must be a number, got {mean!r}")
    count, total = snapshot["count"], snapshot["total"]
    if count == 0:
        if total or snapshot["max"] or mean:
            fail("count is 0 but totals are non-zero")
        return
    if snapshot["min"] > snapshot["max"]:
        fail(f"min {snapshot['min']} > max {snapshot['max']}")
    if snapshot["p50"] > snapshot["p99"]:
        fail(f"p50 {snapshot['p50']} > p99 {snapshot['p99']}")
    if abs(mean - total / count) > 1e-9:
        fail(f"mean {mean} != total/count {total / count}")


def render_snapshot(snapshot: dict) -> str:
    """ASCII rendering of a :meth:`MetricsRegistry.snapshot` dict (the
    form persisted inside trace artifacts — scalars for counters and
    gauges, summary dicts for histograms)."""
    if not snapshot:
        return "(no metrics recorded)"
    scalars = {
        k: v for k, v in snapshot.items() if not isinstance(v, dict)
    }
    hists = {k: v for k, v in snapshot.items() if isinstance(v, dict)}
    lines = []
    if scalars:
        width = max(len(k) for k in scalars)
        for key in sorted(scalars):
            lines.append(f"{key:{width}s}  {scalars[key]}")
    if hists:
        width = max(len(k) for k in hists)
        for key in sorted(hists):
            snap = hists[key]
            lines.append(
                f"{key:{width}s}  n={snap['count']} "
                f"mean={snap['mean']:.1f} min={snap['min']} "
                f"p50<={snap['p50']} p99<={snap['p99']} "
                f"max={snap['max']}"
            )
    return "\n".join(lines)
