"""The structured event stream underneath all tracing.

An :class:`EventStream` collects cycle-stamped :class:`TraceEvent`
records with bounded memory and *per-kind drop accounting*: a bounded
stream that had to discard events can always say exactly how many of
each kind it lost, so a truncated trace never silently under-reports
(``summary()`` surfaces the losses alongside the recorded counts).

Two bounding disciplines are supported:

* ``keep="first"`` — record the first *limit* events and drop the
  rest (the historical ``Tracer``/``--trace=N`` behavior: you see how
  a run starts);
* ``keep="last"`` — a ring buffer of the most recent *limit* events
  (you see how a run ends — the right choice for post-mortems of
  long runs).

The stream is JSON-round-trippable (:meth:`to_payload` /
:meth:`from_payload`) so the experiment engine can persist traces as
artifacts next to cached results.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One simulator event."""

    #: begin | commit | abort | steal | repair | forward | stall | conflict
    kind: str
    core: int
    #: event-specific payload (cycle, reason, block, address, value, ...)
    detail: dict = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[core {self.core}] {self.kind} {extra}".rstrip()

    @property
    def cycle(self) -> Optional[int]:
        """The machine-clock stamp, when the emitter had one."""
        return self.detail.get("cycle")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "core": self.core,
                "detail": dict(self.detail)}

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        return cls(
            kind=data["kind"], core=data["core"],
            detail=dict(data.get("detail", ())),
        )


#: on-disk schema of :meth:`EventStream.to_payload` artifacts
PAYLOAD_SCHEMA = 1


class EventStream:
    """Bounded collector of :class:`TraceEvent` with drop accounting."""

    def __init__(
        self, limit: Optional[int] = None, keep: str = "first"
    ) -> None:
        if keep not in ("first", "last"):
            raise ValueError(f"keep must be 'first' or 'last', not {keep!r}")
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative")
        self.limit = limit
        self.keep = keep
        self.events: deque[TraceEvent] = deque()
        #: events discarded because of the bound, counted per kind
        self.dropped_by_kind: dict[str, int] = {}

    # -- collection --------------------------------------------------------
    def emit(self, kind: str, core: int, **detail) -> None:
        if self.limit is not None and len(self.events) >= self.limit:
            drops = self.dropped_by_kind
            if self.keep == "first":
                drops[kind] = drops.get(kind, 0) + 1
                return
            evicted = self.events.popleft()
            drops[evicted.kind] = drops.get(evicted.kind, 0) + 1
        self.events.append(TraceEvent(kind=kind, core=core, detail=detail))

    @property
    def dropped(self) -> int:
        """Total events discarded (all kinds)."""
        return sum(self.dropped_by_kind.values())

    @property
    def total_emitted(self) -> int:
        """Events offered to the stream, recorded or not."""
        return len(self.events) + self.dropped

    # -- queries -----------------------------------------------------------
    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def per_core(self, core: int) -> list[TraceEvent]:
        return [e for e in self.events if e.core == core]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def summary(self) -> dict[str, int]:
        """Recorded events per kind — plus, for any kind the bound
        forced drops of, a ``"<kind>:dropped"`` entry, so a bounded
        trace can never pass for a complete one."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        for kind, dropped in self.dropped_by_kind.items():
            counts[f"{kind}:dropped"] = dropped
        return counts

    def max_cycle(self) -> int:
        """Largest cycle stamp seen (0 when nothing is stamped)."""
        return max(
            (e.detail["cycle"] for e in self.events if "cycle" in e.detail),
            default=0,
        )

    # -- persistence -------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-safe representation (the engine's trace artifact)."""
        return {
            "schema": PAYLOAD_SCHEMA,
            "limit": self.limit,
            "keep": self.keep,
            "events": [e.to_dict() for e in self.events],
            "dropped_by_kind": dict(self.dropped_by_kind),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "EventStream":
        stream = cls(
            limit=payload.get("limit"), keep=payload.get("keep", "first")
        )
        stream.events.extend(
            TraceEvent.from_dict(e) for e in payload.get("events", ())
        )
        stream.dropped_by_kind = dict(payload.get("dropped_by_kind", ()))
        return stream


def events_from_payload(payload: dict) -> list[TraceEvent]:
    """Just the events of a :meth:`EventStream.to_payload` artifact."""
    return [TraceEvent.from_dict(e) for e in payload.get("events", ())]
