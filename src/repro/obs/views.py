"""Derived views over the event stream.

Two renderings the paper's narrative leans on and raw event dumps
bury:

* the **contention heatmap** — which blocks the cores actually fight
  over (conflicts, stalls, steals, and the aborts they caused), the
  shape behind Figure 4/10's conflict fractions;
* the **abort attribution** breakdown — aborts counted by
  (reason x transaction label x block), the diagnosis view for "which
  transaction dies, why, and on what data".

Both accept anything iterable over :class:`TraceEvent` (a live
:class:`~repro.obs.events.EventStream`, a list decoded from a trace
artifact, ...) and render deterministically: same events in, same
bytes out.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.events import TraceEvent

#: heatmap columns, in display order
_HEAT_KINDS = ("conflict", "stall", "steal", "abort")


def _block_of_event(event: TraceEvent):
    block = event.detail.get("block")
    if block is None or (isinstance(block, int) and block < 0):
        return None  # e.g. commit-order barrier stalls (block = -1)
    return block


def contention_counts(
    events: Iterable[TraceEvent],
) -> dict[int, dict[str, int]]:
    """Per-block counts of contention events, ``{block: {kind: n}}``."""
    counts: dict[int, dict[str, int]] = {}
    for event in events:
        if event.kind not in _HEAT_KINDS:
            continue
        block = _block_of_event(event)
        if block is None:
            continue
        row = counts.setdefault(block, dict.fromkeys(_HEAT_KINDS, 0))
        row[event.kind] += 1
    return counts


def contention_heatmap(
    events: Iterable[TraceEvent], top: int = 16, width: int = 32
) -> str:
    """ASCII heatmap of the *top* most contended blocks."""
    counts = contention_counts(events)
    if not counts:
        return "(no contention events)"
    ranked = sorted(
        counts.items(),
        key=lambda item: (-sum(item[1].values()), item[0]),
    )
    shown = ranked[:top]
    peak = max(sum(row.values()) for _block, row in shown)
    header = (
        f"{'block':>10s}  {'total':>6s}  "
        + "  ".join(f"{kind:>8s}" for kind in _HEAT_KINDS)
        + "  heat"
    )
    lines = [header, "-" * len(header)]
    for block, row in shown:
        total = sum(row.values())
        bar = "#" * max(1, round(total * width / peak))
        lines.append(
            f"{block:>10d}  {total:>6d}  "
            + "  ".join(f"{row[kind]:>8d}" for kind in _HEAT_KINDS)
            + f"  {bar}"
        )
    if len(ranked) > top:
        rest = sum(
            sum(row.values()) for _block, row in ranked[top:]
        )
        lines.append(
            f"(+{len(ranked) - top} more blocks, {rest} events)"
        )
    return "\n".join(lines)


def abort_attribution(
    events: Iterable[TraceEvent],
) -> dict[tuple[str, str, object], int]:
    """Abort counts keyed by ``(reason, txn label, block)``.

    ``block`` is the block whose conflict resolution doomed the
    transaction — or, for capacity aborts, the block whose admission
    overflowed the structure — when known, else ``"-"`` (constraint
    aborts, commit-order aborts, and traces predating block
    attribution).
    """
    counts: dict[tuple[str, str, object], int] = {}
    for event in events:
        if event.kind != "abort":
            continue
        reason = str(event.detail.get("reason", "unknown"))
        label = str(event.detail.get("label", "-"))
        block = _block_of_event(event)
        key = (reason, label, block if block is not None else "-")
        counts[key] = counts.get(key, 0) + 1
    return counts


def capacity_attribution(
    events: Iterable[TraceEvent],
) -> dict[tuple[str, str], int]:
    """Capacity-abort counts keyed by ``(structure, txn label)``.

    The structure name (``read_set``, ``write_set``, ``ssb``, ...)
    comes from the abort event's ``structure`` detail; events from
    traces predating structure attribution land under ``"-"``.  The
    workload x backend dimensions of the Kafousis-style attribution
    live one level up: each trace artifact is a single (workload,
    backend) run, so callers key their aggregation by run.
    """
    counts: dict[tuple[str, str], int] = {}
    for event in events:
        if event.kind != "abort":
            continue
        if event.detail.get("reason") != "capacity":
            continue
        structure = str(event.detail.get("structure", "-"))
        label = str(event.detail.get("label", "-"))
        key = (structure, label)
        counts[key] = counts.get(key, 0) + 1
    return counts


def capacity_breakdown(events: Iterable[TraceEvent]) -> str:
    """ASCII table of :func:`capacity_attribution`, largest first."""
    counts = capacity_attribution(events)
    if not counts:
        return "(no capacity aborts)"
    header = f"{'aborts':>6s}  {'structure':<12s}  txn label"
    lines = [header, "-" * len(header)]
    ranked = sorted(
        counts.items(), key=lambda item: (-item[1], item[0])
    )
    for (structure, label), n in ranked:
        lines.append(f"{n:>6d}  {structure:<12s}  {label}")
    total = sum(counts.values())
    lines.append(f"{total:>6d}  total")
    return "\n".join(lines)


def abort_breakdown(events: Iterable[TraceEvent]) -> str:
    """ASCII table of :func:`abort_attribution`, most-aborted first."""
    counts = abort_attribution(events)
    if not counts:
        return "(no aborts)"
    header = f"{'aborts':>6s}  {'reason':<12s}  {'txn label':<16s}  block"
    lines = [header, "-" * len(header)]
    ranked = sorted(
        counts.items(), key=lambda item: (-item[1], item[0][:2],
                                          str(item[0][2]))
    )
    for (reason, label, block), n in ranked:
        lines.append(
            f"{n:>6d}  {reason:<12s}  {label:<16s}  {block}"
        )
    total = sum(counts.values())
    lines.append(f"{total:>6d}  total")
    return "\n".join(lines)
