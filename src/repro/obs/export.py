"""Chrome-trace / Perfetto JSON export.

Converts a simulator event stream into the Trace Event Format JSON
that ``chrome://tracing`` and ``ui.perfetto.dev`` open natively:

* one **track per core** — pid 0 is the machine, tid *n* is core *n*
  (named via ``M``/``thread_name`` metadata events);
* every transaction **attempt is a duration event** (``ph="X"``) from
  its ``begin`` to the matching ``commit`` or ``abort``, named by the
  transaction's label and carrying the outcome (and abort reason) in
  ``args``;
* **repairs, steals, forwards, stalls, and conflicts are instants**
  (``ph="i"``, thread scope) at their cycle.

Cycles map 1:1 onto the format's microsecond ``ts`` axis, so Perfetto's
ruler reads directly in simulated cycles.  Truncation is honest: the
per-kind drop counts of a bounded stream are carried in ``otherData``
so a clipped trace is visibly clipped.

:func:`validate_chrome_trace` is the schema check used by the tests
and the CI trace-smoke step: it enforces the structural subset of the
format this exporter targets (and that the viewers require).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional

from repro.obs.events import EventStream, TraceEvent

#: event kinds rendered as thread-scoped instants
INSTANT_KINDS = (
    "repair", "steal", "forward", "stall", "conflict", "fallback",
)

#: phases the validator accepts (the subset the exporter emits)
_VALID_PHASES = {"X", "i", "M"}


def _txn_name(event: TraceEvent) -> str:
    return str(event.detail.get("label", "txn"))


def chrome_trace(
    events: "EventStream | Iterable[TraceEvent]",
    label: str = "repro",
    dropped_by_kind: Optional[dict] = None,
) -> dict:
    """Build the Trace Event Format payload for *events*.

    *events* is anything iterable over :class:`TraceEvent` (an
    :class:`EventStream`, a list from an artifact payload, ...).  When
    it is an :class:`EventStream` its drop accounting is embedded
    automatically; pass ``dropped_by_kind`` explicitly otherwise.
    """
    if isinstance(events, EventStream):
        dropped_by_kind = dict(events.dropped_by_kind)
    stamped: list[TraceEvent] = [
        e for e in events if "cycle" in e.detail
    ]
    max_cycle = max((e.detail["cycle"] for e in stamped), default=0)

    cores = sorted({e.core for e in stamped})
    trace_events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": f"repro machine [{label}]"},
        }
    ]
    for core in cores:
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": core,
                "args": {"name": f"core {core}"},
            }
        )

    #: per-core currently-open transaction attempt (its begin event)
    open_begin: dict[int, TraceEvent] = {}
    spans: list[dict] = []
    instants: list[dict] = []

    def close_span(begin: TraceEvent, end_cycle: int, outcome: str,
                   end_detail: Optional[dict] = None) -> None:
        args = {
            k: v for k, v in begin.detail.items() if k != "cycle"
        }
        args["outcome"] = outcome
        if end_detail:
            args.update(
                {k: v for k, v in end_detail.items()
                 if k not in ("cycle", "label")}
            )
        spans.append(
            {
                "name": _txn_name(begin),
                "cat": "txn",
                "ph": "X",
                "ts": begin.detail["cycle"],
                "dur": max(0, end_cycle - begin.detail["cycle"]),
                "pid": 0,
                "tid": begin.core,
                "args": args,
            }
        )

    for event in stamped:
        kind = event.kind
        if kind == "begin":
            # A begin while an attempt is open means its end event was
            # dropped by the bound; close the stale span honestly.
            stale = open_begin.pop(event.core, None)
            if stale is not None:
                close_span(stale, event.detail["cycle"], "truncated")
            open_begin[event.core] = event
        elif kind in ("commit", "abort"):
            begin = open_begin.pop(event.core, None)
            if begin is None:
                continue  # begin fell outside the bounded window
            close_span(begin, event.detail["cycle"], kind, event.detail)
        elif kind in INSTANT_KINDS:
            instants.append(
                {
                    "name": kind,
                    "cat": kind,
                    "ph": "i",
                    "ts": event.detail["cycle"],
                    "pid": 0,
                    "tid": event.core,
                    "s": "t",
                    "args": {
                        k: v for k, v in event.detail.items()
                        if k != "cycle"
                    },
                }
            )
    for begin in open_begin.values():
        close_span(begin, max_cycle, "truncated")

    # Deterministic order: metadata first, then time-sorted payload.
    payload_events = sorted(
        spans + instants,
        key=lambda e: (e["ts"], e["tid"], e["ph"], e["name"]),
    )
    trace_events.extend(payload_events)
    other: dict = {"tool": "repro trace export", "label": label,
                   "max_cycle": max_cycle}
    if dropped_by_kind:
        other["dropped_by_kind"] = {
            k: dropped_by_kind[k] for k in sorted(dropped_by_kind)
        }
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": other,
    }


def validate_chrome_trace(payload: dict) -> None:
    """Raise ``ValueError`` unless *payload* is a structurally valid
    Chrome trace of the subset this exporter emits."""

    def fail(message: str, index: Optional[int] = None) -> None:
        where = "" if index is None else f" (traceEvents[{index}])"
        raise ValueError(f"invalid chrome trace{where}: {message}")

    if not isinstance(payload, dict):
        fail("top level must be an object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        fail("'traceEvents' must be a list")
    unit = payload.get("displayTimeUnit", "ms")
    if unit not in ("ms", "ns"):
        fail(f"displayTimeUnit must be 'ms' or 'ns', not {unit!r}")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail("event must be an object", i)
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            fail(f"unsupported phase {phase!r}", i)
        if not isinstance(event.get("name"), str) or not event["name"]:
            fail("missing event name", i)
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                fail(f"missing integer {key!r}", i)
        if "args" in event and not isinstance(event["args"], dict):
            fail("'args' must be an object", i)
        if phase == "M":
            if event["name"] not in ("process_name", "thread_name"):
                fail(f"unknown metadata record {event['name']!r}", i)
            if not isinstance(event.get("args", {}).get("name"), str):
                fail("metadata record needs args.name", i)
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"bad timestamp {ts!r}", i)
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"complete event needs non-negative dur, got {dur!r}", i)
        if phase == "i" and event.get("s", "t") not in ("t", "p", "g"):
            fail(f"bad instant scope {event.get('s')!r}", i)


def write_chrome_trace(path: "str | Path", payload: dict) -> Path:
    """Validate and write *payload* as deterministic, stable JSON."""
    validate_chrome_trace(payload)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=1)
        handle.write("\n")
    return path
