"""Observability: metrics, structured events, trace export, views.

The layer the evaluation's artifacts are built from (see
``docs/observability.md``):

* :mod:`repro.obs.events` — the structured event stream: bounded
  collection with per-kind drop accounting, cycle-stamped from the
  machine clock.  This is the tracer: attach an
  :class:`~repro.obs.events.EventStream` as ``system.tracer`` (the
  legacy ``repro.sim.trace.Tracer`` shim is gone).
* :mod:`repro.obs.metrics` — a typed metrics registry (counters,
  gauges, histograms) flushed at transaction boundaries only, zero
  cost when not attached.
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSON export: any
  run opens in ``ui.perfetto.dev`` with one track per core.
* :mod:`repro.obs.views` — derived views: per-block contention
  heatmap and the abort-attribution breakdown.
* :mod:`repro.obs.collect` — end-of-run collection of machine-level
  counters (cache spills, evictions, cycle breakdown) into a registry.
"""

from repro.obs.events import EventStream, TraceEvent
from repro.obs.export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_snapshot,
)
from repro.obs.views import (
    abort_attribution,
    abort_breakdown,
    contention_counts,
    contention_heatmap,
)

__all__ = [
    "Counter",
    "EventStream",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "abort_attribution",
    "abort_breakdown",
    "chrome_trace",
    "contention_counts",
    "contention_heatmap",
    "render_snapshot",
    "validate_chrome_trace",
    "write_chrome_trace",
]
