"""End-of-run metric collection.

Per-event metrics (transaction counters, duration histograms) are
emitted live at transaction boundaries; everything that is *already
counted elsewhere* — the per-core cycle attribution in
:class:`~repro.sim.stats.CoreStats`, the coherence fabric's spill and
overflow counters, per-cache eviction totals — is flushed into the
registry exactly once, here, when the run finishes.  This keeps the
simulation loop free of duplicate bookkeeping: the registry *reads*
the boundary-flushed structures instead of shadowing them.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry


def collect_machine(
    registry: MetricsRegistry, machine, makespan: int
) -> None:
    """Flush *machine*'s end-of-run totals into *registry*.

    Called by :meth:`repro.sim.machine.Machine.run` just before it
    returns, when a registry is attached.
    """
    stats = machine.stats
    registry.set("sim.makespan_cycles", makespan)
    registry.set("sim.ncores", machine.config.ncores)

    totals = {"busy": 0, "conflict": 0, "barrier": 0, "other": 0}
    for cid in range(machine.config.ncores):
        core = stats.core(cid)
        totals["busy"] += core.busy
        totals["conflict"] += core.conflict
        totals["barrier"] += core.barrier
        totals["other"] += core.other
        # Per-core flush: CoreStats is the core-local accumulator
        # (written only at txn boundaries); this is its registry flush.
        registry.set("core.busy_cycles", core.busy, core=cid)
        registry.set("core.conflict_cycles", core.conflict, core=cid)
        registry.set("core.commits", core.commits, core=cid)
        registry.set("core.aborts", core.total_aborts, core=cid)
        registry.set("core.stall_events", core.stall_events, core=cid)
    for bucket, cycles in totals.items():
        registry.set(f"cycles.{bucket}", cycles)

    fabric = machine.fabric
    registry.set("cache.perm_spills", fabric.perm_cache_spills)
    registry.set("cache.overflows", fabric.overflow_events)
    registry.set(
        "cache.l1_evictions",
        sum(c.l1.evictions for c in fabric.cores),
    )
    registry.set(
        "cache.l2_evictions",
        sum(c.l2.evictions for c in fabric.cores),
    )
    registry.set(
        "cache.perm_evictions",
        sum(c.perm.evictions for c in fabric.cores),
    )
