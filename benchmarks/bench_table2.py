"""Table 2: workloads used in the RETCON evaluation."""

from repro.analysis.figures import table2
from repro.analysis.report import format_table
from repro.workloads.registry import ALL_VARIANTS

from conftest import emit


def test_table2_workloads(benchmark):
    rows = benchmark(table2)
    emit(
        "Table 2: Workloads used in RETCON evaluation",
        format_table(["Workload", "Description", "Input"], rows),
    )
    names = {row[0] for row in rows}
    assert set(ALL_VARIANTS) < names
    assert "bayes" in names  # Table 3's first row (paper)
