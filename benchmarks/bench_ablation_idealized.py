"""§5.3 ablation: idealized RETCON vs the default configuration.

Paper claim: a RETCON that tracks unlimited state, reacquires blocks
in parallel at commit, and performs commit-time stores for free does
not significantly change the results — the 16/16/32-entry structures
and the serial commit are not the bottleneck.
"""

from repro.analysis.report import format_table
from repro.exp import Point, run_points
from repro.sim.config import MachineConfig

from conftest import emit

WORKLOADS = ("python_opt", "genome-sz", "vacation_opt-sz")


def test_idealized_retcon_changes_little(run_once, bench_params):
    base = MachineConfig().with_cores(bench_params["ncores"])
    points = {
        (name, label): Point(
            workload=name,
            system="retcon",
            ncores=bench_params["ncores"],
            seed=bench_params["seed"],
            scale=bench_params["scale"],
            config=config,
        )
        for name in WORKLOADS
        for label, config in (
            ("default", base),
            ("idealized", base.idealize()),
        )
    }

    def sweep():
        results = run_points(
            points.values(), jobs=bench_params["jobs"]
        )
        return {
            name: (
                results[points[(name, "default")]],
                results[points[(name, "idealized")]],
            )
            for name in WORKLOADS
        }

    results = run_once(sweep)
    rows = [
        (
            name,
            f"{default.speedup:.1f}",
            f"{idealized.speedup:.1f}",
            f"{idealized.speedup / max(default.speedup, 0.01):.2f}x",
        )
        for name, (default, idealized) in results.items()
    ]
    emit(
        "§5.3 ablation: default vs idealized RETCON "
        "(unlimited state, parallel reacquire, free stores)",
        format_table(
            ["workload", "default", "idealized", "ratio"], rows
        ),
    )
    for name, (default, idealized) in results.items():
        ratio = idealized.speedup / max(default.speedup, 0.01)
        # "did not significantly impact results": within ~45% here
        # (our runs are far shorter than the paper's, so predictor
        # warmup — which the idealized variant also skips via
        # unlimited tracking — weighs more).
        assert 0.8 < ratio < 2.0, (name, ratio)
