"""§5.3 ablation: idealized RETCON vs the default configuration.

Paper claim: a RETCON that tracks unlimited state, reacquires blocks
in parallel at commit, and performs commit-time stores for free does
not significantly change the results — the 16/16/32-entry structures
and the serial commit are not the bottleneck.
"""

from repro.analysis.report import format_table
from repro.sim.config import MachineConfig
from repro.sim.runner import generate_and_baseline, run_workload

from conftest import emit

WORKLOADS = ("python_opt", "genome-sz", "vacation_opt-sz")


def run_pair(name, ncores, seed, scale):
    config = MachineConfig().with_cores(ncores)
    _, seq = generate_and_baseline(
        name, ncores=ncores, seed=seed, scale=scale, config=config
    )
    default = run_workload(
        name, "retcon", ncores=ncores, seed=seed, scale=scale,
        config=config, seq_cycles=seq,
    )
    idealized = run_workload(
        name, "retcon", ncores=ncores, seed=seed, scale=scale,
        config=config.idealize(), seq_cycles=seq,
    )
    return default, idealized


def test_idealized_retcon_changes_little(run_once, bench_params):
    def sweep():
        return {name: run_pair(name, **bench_params) for name in WORKLOADS}

    results = run_once(sweep)
    rows = [
        (
            name,
            f"{default.speedup:.1f}",
            f"{idealized.speedup:.1f}",
            f"{idealized.speedup / max(default.speedup, 0.01):.2f}x",
        )
        for name, (default, idealized) in results.items()
    ]
    emit(
        "§5.3 ablation: default vs idealized RETCON "
        "(unlimited state, parallel reacquire, free stores)",
        format_table(
            ["workload", "default", "idealized", "ratio"], rows
        ),
    )
    for name, (default, idealized) in results.items():
        ratio = idealized.speedup / max(default.speedup, 0.01)
        # "did not significantly impact results": within ~45% here
        # (our runs are far shorter than the paper's, so predictor
        # warmup — which the idealized variant also skips via
        # unlimited tracking — weighs more).
        assert 0.8 < ratio < 2.0, (name, ratio)
