"""§2 ablation: contention-management policies on the eager baseline.

The paper's baseline uses the timestamp "oldest transaction wins"
policy, reporting it "generally performs the same or better than other
policies [and] ensures timely forward progress".  This bench compares
it against requester-aborts (Figure 2c) and requester-stalls
(Figure 2d) on a conflict-heavy workload.
"""

from repro.analysis.report import format_table
from repro.exp import run_matrix

from conftest import emit

POLICIES = ("eager", "eager-abort", "eager-stall")
WORKLOAD = "genome-sz"


def test_contention_policies(run_once, bench_params):
    def sweep():
        matrix = run_matrix(
            (WORKLOAD,),
            POLICIES,
            ncores=bench_params["ncores"],
            seed=bench_params["seed"],
            # Conflict-heavy but short-transaction workload keeps this
            # cheap.
            scale=min(bench_params["scale"], 0.4),
            jobs=bench_params["jobs"],
        )
        return {policy: matrix[(WORKLOAD, policy)] for policy in POLICIES}

    results = run_once(sweep)
    rows = [
        (name, f"{r.speedup:.1f}", r.aborts)
        for name, r in results.items()
    ]
    emit(
        "§2 ablation: contention management on genome-sz",
        format_table(["policy", "speedup", "aborts"], rows),
    )

    # Every policy preserves the workload invariants.
    for name, result in results.items():
        assert result.invariants_ok, name
    # The timestamp baseline is competitive with the alternatives
    # (within 40% of the best), as the paper reports.
    best = max(r.speedup for r in results.values())
    assert results["eager"].speedup > 0.6 * best
