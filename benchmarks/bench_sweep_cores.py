"""Extension bench: scaling curves over core count.

The paper's headline sentence — RETCON "transform[s] a
transactionalized version of the reference python interpreter from a
workload that exhibits no scaling to one that exhibits near-linear
scaling on 32 cores" — implies a whole curve, not just the 32-core
endpoint.  This bench sweeps 1..N cores for python_opt under eager and
RETCON and checks the curve shapes: eager flat, RETCON monotonically
rising, with the crossover at small core counts.
"""

from repro.analysis.sweeps import format_sweep, sweep_matrix

from conftest import emit


def test_python_opt_scaling_curve(run_once, bench_params):
    core_counts = tuple(
        n for n in (1, 2, 4, 8, 16, 32) if n <= bench_params["ncores"]
    )

    def sweep():
        return sweep_matrix(
            "python_opt",
            ("eager", "retcon"),
            core_counts,
            seed=bench_params["seed"],
            scale=min(bench_params["scale"], 0.5),
            jobs=bench_params["jobs"],
        )

    curves = run_once(sweep)
    emit(
        "Scaling sweep: python_opt, eager vs RETCON",
        format_sweep("python_opt", curves),
    )

    eager = [p.speedup for p in curves["eager"]]
    retcon = [p.speedup for p in curves["retcon"]]

    # Eager stays flat: the GIL-elided refcounts serialize it.
    assert max(eager) < 3.0
    # RETCON's curve rises with cores...
    assert retcon[-1] > retcon[0] * 0.5 * len(core_counts)
    # ...and ends far above eager.
    assert retcon[-1] > 4 * eager[-1]
    # They tie at one core (nothing to repair without concurrency).
    assert abs(retcon[0] - eager[0]) < 0.3
