"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints it.  Knobs (environment variables):

* ``REPRO_CORES`` — simulated core count (default 32, as in the paper).
* ``REPRO_SCALE`` — per-thread work multiplier (default 0.5 for the
  benchmark suite so a full run finishes in minutes; use 1.0 to match
  the numbers recorded in EXPERIMENTS.md).
* ``REPRO_SEED`` — workload generation seed (default 1).
* ``REPRO_JOBS`` — experiment-engine worker processes (default 1 so
  pytest-benchmark timings stay comparable across machines; raise it
  to shorten a full suite run).

Results are never cached here: benchmarks measure, so every run
simulates from scratch.
"""

from __future__ import annotations

import os

import pytest


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


@pytest.fixture(scope="session")
def bench_params() -> dict:
    return {
        "ncores": _env_int("REPRO_CORES", 32),
        "scale": _env_float("REPRO_SCALE", 0.5),
        "seed": _env_int("REPRO_SEED", 1),
        "jobs": _env_int("REPRO_JOBS", 1),
    }


@pytest.fixture
def run_once(benchmark):
    """Run an expensive simulation exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner


def emit(title: str, body: str) -> None:
    """Print a figure/table with a banner (shown with pytest -s or in
    captured output on failure)."""
    banner = "=" * max(len(title), 20)
    print(f"\n{banner}\n{title}\n{banner}\n{body}\n")
