"""Figure 1: scalability of the aggressive eager HTM on 32 processors.

Paper shape: some workloads (genome, kmeans, ssca2, vacation-ish)
obtain real speedups, but half the suite scales below ~5x — python in
particular shows essentially no scaling.
"""

from repro.analysis.figures import figure1
from repro.analysis.report import bar_chart

from conftest import emit


def test_figure1_baseline_scalability(run_once, bench_params):
    series = run_once(figure1, **bench_params)
    emit(
        "Figure 1: Scalability of aggressive HTM on "
        f"{bench_params['ncores']} processors (speedup over seq)",
        bar_chart(series, max_value=bench_params["ncores"]),
    )
    # Paper shape assertions: python does not scale; at least one
    # workload scales well; at least half the suite is below 8x.
    assert series["python"] < 2.0
    assert max(series.values()) > bench_params["ncores"] * 0.3
    poor = [name for name, s in series.items() if s < 8.0]
    assert len(poor) >= len(series) // 2
