"""§4.4 / Table 1 ablation: RETCON structure sizing.

Sweeps the initial-value-buffer and symbolic-store-buffer capacities
on python_opt (the heaviest user per Table 3).  Paper claim: 16 IVB
entries / 16 constraints / 32 SSB entries are sufficient — python_opt
tracks ~5 blocks and buffers ~6 stores per transaction on average, so
performance saturates well below the configured sizes.
"""

from dataclasses import replace

from repro.analysis.report import format_table
from repro.exp import Point, run_points
from repro.sim.config import MachineConfig

from conftest import emit

IVB_SIZES = (2, 4, 16)
SSB_SIZES = (4, 8, 32)


def test_structure_sizing(run_once, bench_params):
    base = MachineConfig().with_cores(bench_params["ncores"])
    configs = {("ivb", n): replace(base, ivb_entries=n) for n in IVB_SIZES}
    configs.update(
        {("ssb", n): replace(base, ssb_entries=n) for n in SSB_SIZES}
    )
    points = {
        key: Point(
            workload="python_opt",
            system="retcon",
            ncores=bench_params["ncores"],
            seed=bench_params["seed"],
            scale=bench_params["scale"],
            config=config,
        )
        for key, config in configs.items()
    }

    def sweep():
        results = run_points(
            points.values(), jobs=bench_params["jobs"]
        )
        return {key: results[point] for key, point in points.items()}

    results = run_once(sweep)
    rows = [
        (kind, size, f"{r.speedup:.1f}", r.aborts)
        for (kind, size), r in results.items()
    ]
    emit(
        "§4.4 ablation: structure sizing on python_opt",
        format_table(
            ["structure", "entries", "speedup", "aborts"], rows
        ),
    )

    # Table-1 sizes are on the saturated part of the curve: going from
    # the starved configuration to the paper's costs nothing.
    assert results[("ivb", 16)].speedup >= results[("ivb", 2)].speedup
    assert results[("ssb", 32)].speedup >= results[("ssb", 4)].speedup
    # Starving the SSB to 4 entries visibly hurts (capacity aborts or
    # eager fallback conflicts).
    assert (
        results[("ssb", 4)].speedup
        < 0.9 * results[("ssb", 32)].speedup
        or results[("ssb", 4)].aborts
        > results[("ssb", 32)].aborts
    )
