"""Figure 3: scalability before/after the software restructurings.

Paper shape: the ``_opt`` restructurings rescue intruder and vacation
(5x/15x -> >20x); the ``-sz`` variants remain abort-bound on the
baseline; python stays flat with or without ``_opt`` on the baseline
system (its refcounts need RETCON).
"""

from repro.analysis.figures import figure3
from repro.analysis.report import bar_chart

from conftest import emit


def test_figure3_software_restructurings(run_once, bench_params):
    series = run_once(figure3, **bench_params)
    emit(
        "Figure 3: eager-baseline scalability, before/after software "
        "optimizations",
        bar_chart(series, max_value=bench_params["ncores"]),
    )
    # Restructuring rescues intruder and vacation on the baseline.
    assert series["intruder_opt"] > 4 * series["intruder"]
    assert series["vacation_opt"] > 1.5 * series["vacation"]
    # The resizable hashtable reintroduces the bottleneck.
    assert series["intruder_opt-sz"] < series["intruder_opt"] / 2
    assert series["vacation_opt-sz"] < series["vacation_opt"] / 2
    assert series["genome-sz"] < series["genome"]
    # python does not scale on the baseline even restructured.
    assert series["python_opt"] < 2.0
