"""Figure 4: execution-time breakdown on the eager baseline.

Paper shape: the poorly-scaling workloads are conflict-bound (time
stalled or in doomed transactions), except labyrinth (barrier /
load-imbalance bound) and ssca2 (busy-bound: bad caching).
"""

from repro.analysis.figures import figure4
from repro.analysis.report import breakdown_chart

from conftest import emit


def test_figure4_time_breakdown(run_once, bench_params):
    breakdowns = run_once(figure4, **bench_params)
    emit(
        "Figure 4: time breakdown on the eager baseline",
        breakdown_chart(breakdowns),
    )
    # Conflict-bound workloads.
    for name in ("python", "python_opt", "genome-sz",
                 "intruder_opt-sz", "vacation_opt-sz"):
        assert breakdowns[name]["conflict"] > 0.4, name
    # labyrinth is limited by load imbalance, not conflicts.
    assert breakdowns["labyrinth"]["barrier"] > 0.2
    assert breakdowns["labyrinth"]["conflict"] < 0.2
    # ssca2 is busy-bound (bad caching, few conflicts).
    assert breakdowns["ssca2"]["busy"] > 0.8
    # The restructured, fixed-size variants are mostly busy.
    assert breakdowns["intruder_opt"]["busy"] > 0.6
