"""Figure 9: scalability over sequential — eager vs lazy-vb vs RETCON.

Paper shape (the headline results):

* python_opt: no scaling on eager/lazy-vb -> near-linear under RETCON.
* genome-sz / intruder_opt-sz / vacation_opt-sz: RETCON repairs the
  hashtable size field (66% / 211% / 26% over lazy-vb in the paper)
  and makes the workloads insensitive to the resizable hashtable.
* intruder, yada, python (unopt): RETCON does not help — the contended
  values are used to index memory (§5.4).
* vacation is the main workload where lazy-vb alone already beats the
  eager baseline (silent/false sharing in the tree).
"""

from repro.analysis.figures import EVAL_SYSTEMS, figure9
from repro.analysis.report import format_speedup_matrix

from conftest import emit


def test_figure9_three_system_scalability(run_once, bench_params):
    matrix = run_once(figure9, **bench_params)
    emit(
        "Figure 9: speedup over sequential execution",
        format_speedup_matrix(matrix, EVAL_SYSTEMS),
    )

    def s(name, system):
        return matrix[name][system]

    ncores = bench_params["ncores"]

    # python_opt: RETCON transforms no-scaling into near-linear.
    assert s("python_opt", "eager") < 2.5
    assert s("python_opt", "lazy-vb") < 3.0
    assert s("python_opt", "retcon") > 0.55 * ncores

    # Size-field workloads: RETCON beats lazy-vb beats eager.
    for name in ("genome-sz", "intruder_opt-sz", "vacation_opt-sz"):
        assert s(name, "retcon") > 1.3 * s(name, "lazy-vb"), name
        assert s(name, "lazy-vb") > s(name, "eager"), name

    # RETCON makes genome/intruder_opt roughly size-field insensitive.
    assert s("genome-sz", "retcon") > 0.6 * s("genome", "retcon")

    # §5.4 limitations: repair does not rescue these.
    assert s("yada", "retcon") < 0.25 * ncores
    assert s("python", "retcon") < 2.5
    assert s("intruder", "retcon") < 0.25 * ncores

    # vacation gains from value-based detection alone.
    assert s("vacation", "lazy-vb") > 1.5 * s("vacation", "eager")
