"""Simulator throughput: the one bench where wall-clock time is the
measurement (everything else measures *simulated* cycles).

Useful for tracking performance regressions in the simulator itself:
the interpreter executes a fixed conflict-free instruction mix and
pytest-benchmark reports instructions per second.
"""

from repro.isa.instructions import Cond
from repro.isa.program import Assembler
from repro.isa.registers import R1, R2
from repro.mem.memory import MainMemory
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.script import ThreadScript

from conftest import emit

INSTRUCTIONS_PER_TXN = 64
TXNS_PER_CORE = 40
NCORES = 4


def build_machine(system: str) -> Machine:
    scripts = []
    for core in range(NCORES):
        base = 0x10000 * (core + 1)  # disjoint: no conflicts
        script = ThreadScript()
        for _ in range(TXNS_PER_CORE):
            asm = Assembler()
            for i in range(INSTRUCTIONS_PER_TXN // 8):
                addr = base + 8 * i
                asm.load(R1, addr)
                asm.addi(R1, R1, 1)
                asm.store(R1, addr)
                asm.movi(R2, i)
                asm.cmp(R2, 3)
                label = asm.fresh_label("skip")
                asm.bcc(Cond.GT, label)
                asm.nop(1)
                asm.mark(label)
            script.add_txn(asm.build())
        scripts.append(script)
    return Machine(
        MachineConfig().with_cores(NCORES), system, scripts, MainMemory()
    )


def test_interpreter_throughput(benchmark):
    total_instructions = (
        NCORES * TXNS_PER_CORE * INSTRUCTIONS_PER_TXN
    )

    def run():
        machine = build_machine("eager")
        result = machine.run()
        assert result.commits == NCORES * TXNS_PER_CORE
        return result

    benchmark.pedantic(run, rounds=3, iterations=1)
    mean = benchmark.stats["mean"]
    ips = total_instructions / mean
    emit(
        "Simulator throughput",
        f"{total_instructions} instructions in {mean * 1000:.0f} ms "
        f"-> {ips / 1000:.0f}k simulated instructions/second (eager)",
    )
    # Guard against order-of-magnitude interpreter regressions.
    assert ips > 20_000


def test_retcon_overhead_vs_eager(benchmark):
    """RETCON's per-access tracking hooks must not slow the simulator
    down by more than ~3x on conflict-free code."""
    import time

    def timed(system):
        machine = build_machine(system)
        start = time.perf_counter()
        machine.run()
        return time.perf_counter() - start

    def run():
        return timed("eager"), timed("retcon")

    eager_s, retcon_s = benchmark.pedantic(run, rounds=3, iterations=1)
    emit(
        "Simulator overhead of RETCON hooks",
        f"eager {eager_s * 1000:.0f} ms vs retcon "
        f"{retcon_s * 1000:.0f} ms (conflict-free workload)",
    )
    assert retcon_s < 4.0 * max(eager_s, 1e-9)
