"""Simulator throughput: the one bench where wall-clock time is the
measurement (everything else measures *simulated* cycles).

Useful for tracking performance regressions in the simulator itself:
the interpreter executes a fixed conflict-free instruction mix and
pytest-benchmark reports instructions per second.
"""

from repro.isa.instructions import Cond
from repro.isa.program import Assembler
from repro.isa.registers import R1, R2
from repro.mem.memory import MainMemory
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.script import ThreadScript

from conftest import emit

INSTRUCTIONS_PER_TXN = 64
TXNS_PER_CORE = 40
NCORES = 4


def build_machine(system: str) -> Machine:
    scripts = []
    for core in range(NCORES):
        base = 0x10000 * (core + 1)  # disjoint: no conflicts
        script = ThreadScript()
        for _ in range(TXNS_PER_CORE):
            asm = Assembler()
            for i in range(INSTRUCTIONS_PER_TXN // 8):
                addr = base + 8 * i
                asm.load(R1, addr)
                asm.addi(R1, R1, 1)
                asm.store(R1, addr)
                asm.movi(R2, i)
                asm.cmp(R2, 3)
                label = asm.fresh_label("skip")
                asm.bcc(Cond.GT, label)
                asm.nop(1)
                asm.mark(label)
            script.add_txn(asm.build())
        scripts.append(script)
    return Machine(
        MachineConfig().with_cores(NCORES), system, scripts, MainMemory()
    )


def test_interpreter_throughput(benchmark):
    total_instructions = (
        NCORES * TXNS_PER_CORE * INSTRUCTIONS_PER_TXN
    )

    def run():
        machine = build_machine("eager")
        result = machine.run()
        assert result.commits == NCORES * TXNS_PER_CORE
        return result

    benchmark.pedantic(run, rounds=3, iterations=1)
    mean = benchmark.stats["mean"]
    ips = total_instructions / mean
    emit(
        "Simulator throughput",
        f"{total_instructions} instructions in {mean * 1000:.0f} ms "
        f"-> {ips / 1000:.0f}k simulated instructions/second (eager)",
    )
    # Guard against order-of-magnitude interpreter regressions.
    assert ips > 20_000


def test_engine_parallel_speedup(benchmark):
    """Experiment-engine wall-clock: the smoke grid run serially vs
    with a worker pool.

    Records serial and parallel seconds (plus the ratio) in the
    benchmark's ``extra_info`` so BENCH_*.json tracks the parallel
    speedup across PRs.  On single-core CI runners the pool adds
    overhead instead of speedup, so the assertion only guards against
    pathological regressions (and checks result equivalence).
    """
    import json
    import os
    import time

    from repro.exp import run_points, smoke_spec

    jobs = max(2, min(4, os.cpu_count() or 1))
    points = smoke_spec(scale=0.2).points()

    def run_both():
        start = time.perf_counter()
        serial = run_points(points, jobs=1)
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        parallel = run_points(points, jobs=jobs)
        parallel_s = time.perf_counter() - start
        return serial, serial_s, parallel, parallel_s

    serial, serial_s, parallel, parallel_s = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    # Parallel execution must be a pure performance knob: identical
    # results, point for point.
    assert [
        json.dumps(r.to_dict(), sort_keys=True) for r in serial.values()
    ] == [
        json.dumps(r.to_dict(), sort_keys=True) for r in parallel.values()
    ]
    speedup = serial_s / max(parallel_s, 1e-9)
    benchmark.extra_info["engine_serial_s"] = round(serial_s, 3)
    benchmark.extra_info["engine_parallel_s"] = round(parallel_s, 3)
    benchmark.extra_info["engine_jobs"] = jobs
    benchmark.extra_info["engine_speedup"] = round(speedup, 2)
    emit(
        "Experiment engine: smoke grid wall-clock",
        f"serial {serial_s:.2f}s vs jobs={jobs} {parallel_s:.2f}s "
        f"-> {speedup:.2f}x ({os.cpu_count()} host cores)",
    )
    # The pool must never be catastrophically slower than serial (its
    # overhead is per-process startup, bounded regardless of host).
    assert parallel_s < 5.0 * serial_s + 2.0


def test_smoke_grid_profile(benchmark):
    """The ``repro profile`` harness end-to-end: wall seconds and
    simulated cycles/second per smoke sweep point — the payload that
    ``repro profile -o BENCH_pr3.json`` commits as the perf
    trajectory."""
    from repro.analysis.profile import bench_payload, profile_smoke

    profiles = benchmark.pedantic(
        lambda: profile_smoke(repeats=1), rounds=1, iterations=1
    )
    payload = bench_payload(profiles, label="bench")
    benchmark.extra_info["grid_sim_seconds"] = payload["total_sim_seconds"]
    benchmark.extra_info["grid_cycles_per_second"] = payload[
        "grid_cycles_per_second"
    ]
    emit(
        "Simulator hot-path profile (smoke grid)",
        "\n".join(
            f"{p.workload:12s} {p.system:8s} "
            f"{p.sim_seconds * 1000:7.1f} ms "
            f"{p.cycles_per_second / 1e6:6.2f} Mcycles/s"
            for p in profiles
        )
        + f"\ngrid total {payload['total_sim_seconds'] * 1000:.1f} ms",
    )
    assert all(p.commits > 0 for p in profiles)


def test_retcon_overhead_vs_eager(benchmark):
    """RETCON's per-access tracking hooks must not slow the simulator
    down by more than ~3x on conflict-free code."""
    import time

    def timed(system):
        machine = build_machine(system)
        start = time.perf_counter()
        machine.run()
        return time.perf_counter() - start

    def run():
        return timed("eager"), timed("retcon")

    eager_s, retcon_s = benchmark.pedantic(run, rounds=3, iterations=1)
    emit(
        "Simulator overhead of RETCON hooks",
        f"eager {eager_s * 1000:.0f} ms vs retcon "
        f"{retcon_s * 1000:.0f} ms (conflict-free workload)",
    )
    assert retcon_s < 4.0 * max(eager_s, 1e-9)
