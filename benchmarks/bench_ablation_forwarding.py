"""§7 future-work ablation: RETCON + speculative value forwarding.

The paper's conclusion proposes integrating RETCON with
dependence-aware forwarding (DATM) "to broaden the scope of conflicts
that can be avoided".  The ``retcon-fwd`` hybrid implements that:
predictor-tracked blocks repair symbolically, everything else forwards
with commit-order dependences (plus a cooldown for blocks whose
forwarding keeps closing cycles).

Measured outcome (an honest negative-ish result): the hybrid matches
or slightly improves RETCON on repairable workloads (forwarding covers
the predictor's training phase), but on the §5.4 address-dependent
workloads the forwarding chains frequently close cycles, so naive
integration does not rescue them either.
"""

from repro.analysis.report import format_table
from repro.exp import run_matrix

from conftest import emit

WORKLOADS = ("python_opt", "genome-sz", "intruder")
SYSTEMS = ("retcon", "retcon-fwd")


def test_retcon_forwarding_hybrid(run_once, bench_params):
    def sweep():
        matrix = run_matrix(
            WORKLOADS,
            SYSTEMS,
            ncores=min(bench_params["ncores"], 16),
            seed=bench_params["seed"],
            scale=min(bench_params["scale"], 0.4),
            jobs=bench_params["jobs"],
        )
        return {
            name: {
                system: matrix[(name, system)] for system in SYSTEMS
            }
            for name in WORKLOADS
        }

    results = run_once(sweep)
    rows = []
    for name, by_system in results.items():
        for system, r in by_system.items():
            rows.append(
                (
                    name,
                    system,
                    f"{r.speedup:.1f}x",
                    r.aborts,
                    r.aborts_by_reason.get("dependence", 0),
                )
            )
    emit(
        "§7 ablation: RETCON vs RETCON+forwarding hybrid",
        format_table(
            ["workload", "system", "speedup", "aborts",
             "dependence aborts"],
            rows,
        ),
    )

    for name, by_system in results.items():
        for system, result in by_system.items():
            assert result.invariants_ok, (name, system)
    # The hybrid must not lose ground on the flagship repairable case.
    assert (
        results["python_opt"]["retcon-fwd"].speedup
        > 0.8 * results["python_opt"]["retcon"].speedup
    )
    # Forwarding is exercised (the hybrid actually takes dependences).
    assert any(
        by_system["retcon-fwd"].aborts_by_reason.get("dependence", 0)
        > 0
        for by_system in results.values()
    )
