"""Table 3: RETCON structure utilization and pre-commit overhead.

Paper shape: the structures stay small — the initial value buffer
(16 blocks) and the constraint buffer (16 addresses) rarely fill; a
32-entry symbolic store buffer suffices; pre-commit repair costs well
under ~5% of transaction lifetime, with python/python_opt the heaviest
users (they lose the most blocks per transaction).
"""

from repro.analysis.figures import table3
from repro.analysis.report import format_table

from conftest import emit

COLUMNS = (
    "blocks_lost",
    "blocks_tracked",
    "symbolic_registers",
    "private_stores",
    "constraint_addresses",
    "commit_cycles",
)


def test_table3_structure_utilization(run_once, bench_params):
    data = run_once(table3, **bench_params)
    rows = []
    for name, row in data.items():
        cells = [name]
        for column in COLUMNS:
            avg, peak = row[column]
            cells.append(f"{avg:.1f} ({peak:.0f})")
        cells.append(f"{row['commit_stall_percent']:.1f}")
        rows.append(cells)
    emit(
        "Table 3: RETCON structure utilization, avg (max) per txn",
        format_table(
            ["workload"] + list(COLUMNS) + ["commit stall %"], rows
        ),
    )

    for name, row in data.items():
        # The paper's capacity conclusions (§5.3).
        assert row["blocks_tracked"][1] <= 16, name
        assert row["constraint_addresses"][0] < 16, name
        assert row["private_stores"][1] <= 32, name
        assert row["commit_stall_percent"] < 40.0, name

    # The python variants are among the heaviest block-losers (hot
    # refcounts stolen constantly).
    top_losers = sorted(
        data, key=lambda n: data[n]["blocks_lost"][0], reverse=True
    )[:3]
    assert "python_opt" in top_losers or "python" in top_losers
