"""Table 1: simulated machine configuration."""

from repro.analysis.figures import table1
from repro.analysis.report import format_table

from conftest import emit


def test_table1_machine_configuration(benchmark):
    rows = benchmark(table1)
    emit(
        "Table 1: Simulated machine configuration",
        format_table(["Parameter", "Value"], rows),
    )
    labels = {row[0] for row in rows}
    assert {"Processor", "L1 cache", "L2 cache", "Memory",
            "Permissions-only cache", "Coherence",
            "RETCON structures"} <= labels
