"""Figure 2: RETCON vs DATM vs EagerTM vs EagerTM-Stall vs LazyTM on
the two-core double-increment counter.

Paper shape: RETCON repairs both increments and commits without
rollbacks; DATM forwards the first increment but aborts on the cyclic
dependence introduced by the second; EagerTM suffers repeated aborts;
EagerTM-Stall serializes by stalling; LazyTM aborts at the remote
commit.
"""

from repro.analysis.figures import figure2
from repro.analysis.report import format_table
from repro.analysis.timeline import figure2_timelines

from conftest import emit


def test_figure2_counter_comparison(run_once):
    points = run_once(figure2, txns_per_core=6, increments=2)
    rows = [
        (p.system, p.cycles, p.commits, p.aborts, p.stall_events)
        for p in points.values()
    ]
    timelines = "\n\n".join(
        f"--- {system} ---\n{timeline}"
        for system, timeline in figure2_timelines().items()
    )
    emit(
        "Figure 2: two cores, two increments each on a shared counter",
        format_table(
            ["system", "cycles", "commits", "aborts", "stalls"], rows
        )
        + "\n\n"
        + timelines,
    )
    retcon = points["retcon"]
    datm = points["datm"]
    eager = points["eager-abort"]
    stall = points["eager-stall"]
    lazy = points["lazy"]
    # (a) RETCON repairs: at most the single predictor-training abort.
    assert retcon.aborts <= 1
    # (b) DATM forwards but aborts on the cyclic double increments.
    assert datm.aborts >= lazy.commits // 2
    # (c) EagerTM suffers repeated aborts...
    assert eager.aborts > retcon.aborts
    # (d) ...EagerTM-Stall replaces most of them with stalls...
    assert stall.aborts < eager.aborts
    assert stall.stall_events > 0
    # (e) ...and LazyTM aborts at the remote commit.
    assert lazy.aborts > 0
    # Repair avoids DATM's cyclic-dependence rollbacks outright.
    assert retcon.cycles < datm.cycles
