"""Figure 10: execution-time breakdown normalized to the eager baseline.

Paper shape: RETCON eliminates conflict time on the auxiliary-data
workloads (python_opt, the -sz variants); lazy-vb shows a significant
gain over eager mainly on the vacation variants.
"""

from repro.analysis.figures import EVAL_SYSTEMS, figure10
from repro.analysis.report import breakdown_chart

from conftest import emit


def test_figure10_normalized_breakdown(run_once, bench_params):
    data = run_once(figure10, **bench_params)

    flat = {}
    scales = {}
    for name, systems in data.items():
        for system in EVAL_SYSTEMS:
            label = f"{name}/{system}"
            flat[label] = systems[system]["breakdown"]
            scales[label] = min(
                systems[system]["normalized_runtime"], 1.5
            )
    emit(
        "Figure 10: time breakdown (bar length = runtime normalized "
        "to eager, capped at 1.5)",
        breakdown_chart(flat, scales=scales),
    )

    def conflict(name, system):
        return data[name][system]["breakdown"]["conflict"]

    def runtime(name, system):
        return data[name][system]["normalized_runtime"]

    # RETCON removes most of the conflict time on repairable workloads
    # (at small scales predictor warmup keeps a visible conflict share,
    # so the bound is 0.65x of eager's fraction rather than the ~0.5x
    # seen at full scale).
    for name in ("python_opt", "genome-sz", "intruder_opt-sz"):
        assert conflict(name, "retcon") < 0.65 * conflict(name, "eager")
        assert runtime(name, "retcon") < 0.6  # much faster than eager

    # On the unrepairable workloads RETCON adds nothing beyond
    # lazy-vb's value-based validation: their runtimes track closely.
    for name in ("yada", "python"):
        assert (
            runtime(name, "retcon") > 0.7 * runtime(name, "lazy-vb")
        ), name
