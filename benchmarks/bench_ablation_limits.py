"""§5.4 ablation: why RETCON cannot repair intruder/yada/python.

The contended values in these workloads are used to index into memory,
so symbolic tracking degenerates into equality constraints that fail
whenever the value actually changed.  This bench quantifies that:
on the unrepairable workloads most RETCON aborts are constraint
violations or conflicts on trained-down blocks, and the speedup stays
close to the eager baseline — unlike the repairable workloads.
"""

from repro.analysis.report import format_table
from repro.exp import run_matrix

from conftest import emit

UNREPAIRABLE = ("intruder", "yada", "python")
REPAIRABLE = ("python_opt", "genome-sz")


def test_unrepairable_workloads(run_once, bench_params):
    def sweep():
        matrix = run_matrix(
            UNREPAIRABLE + REPAIRABLE,
            ("eager", "retcon"),
            ncores=bench_params["ncores"],
            seed=bench_params["seed"],
            scale=bench_params["scale"],
            jobs=bench_params["jobs"],
        )
        return {
            name: (matrix[(name, "eager")], matrix[(name, "retcon")])
            for name in UNREPAIRABLE + REPAIRABLE
        }

    results = run_once(sweep)
    rows = [
        (
            name,
            f"{eager.speedup:.1f}",
            f"{retcon.speedup:.1f}",
            f"{retcon.speedup / max(eager.speedup, 0.01):.1f}x",
            retcon.aborts_by_reason.get("constraint", 0),
        )
        for name, (eager, retcon) in results.items()
    ]
    emit(
        "§5.4: where repair does not help (speedup eager vs RETCON, "
        "constraint-violation aborts)",
        format_table(
            ["workload", "eager", "retcon", "gain", "constraint aborts"],
            rows,
        ),
    )

    for name in UNREPAIRABLE:
        eager, retcon = results[name]
        gain = retcon.speedup / max(eager.speedup, 0.01)
        assert gain < 2.5, (name, gain)  # little savings over abort
    for name in REPAIRABLE:
        eager, retcon = results[name]
        gain = retcon.speedup / max(eager.speedup, 0.01)
        assert gain > 2.0, (name, gain)
