#!/usr/bin/env python
"""Quickstart: RETCON repairs a shared counter instead of aborting.

Two cores each run transactions that increment a shared counter twice
(the paper's Figure 2 scenario).  Under an eager HTM the transactions
conflict and serialize through aborts/stalls; under RETCON the counter
is tracked symbolically, stolen freely, and *repaired* at commit — so
both cores commit concurrently and the final count is still exact.

Run:  python examples/quickstart.py
"""

from repro.isa.program import Assembler
from repro.isa.registers import R1
from repro.mem.memory import MainMemory
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.script import ThreadScript

COUNTER = 4096  # byte address of the shared counter
TXNS_PER_CORE = 20
NCORES = 8


def increment_twice() -> "Assembler":
    """A transaction that increments [COUNTER] twice, with some work
    in between (the paper's Figure 2 kernel)."""
    asm = Assembler()
    for _ in range(2):
        asm.load(R1, COUNTER)  # read the counter
        asm.addi(R1, R1, 1)  # bump it
        asm.store(R1, COUNTER)  # write it back
        asm.nop(20)  # ... unrelated transaction work ...
    return asm


def run(system: str) -> None:
    memory = MainMemory()
    memory.write(COUNTER, 0)

    scripts = []
    for _core in range(NCORES):
        script = ThreadScript()
        for _ in range(TXNS_PER_CORE):
            script.add_txn(increment_twice().build())
            script.add_work(10)  # non-transactional gap
        scripts.append(script)

    machine = Machine(
        MachineConfig().with_cores(NCORES), system, scripts, memory
    )
    result = machine.run()

    expected = NCORES * TXNS_PER_CORE * 2
    final = memory.read(COUNTER)
    assert final == expected, f"lost updates! {final} != {expected}"
    print(
        f"{system:8s}: {result.cycles:7d} cycles, "
        f"{result.commits} commits, {result.aborts:3d} aborts, "
        f"counter = {final} (exact)"
    )


def main() -> None:
    print(f"{NCORES} cores x {TXNS_PER_CORE} transactions x 2 increments")
    print("-" * 60)
    for system in ("eager", "lazy-vb", "retcon"):
        run(system)
    print(
        "\nRETCON commits through the conflicts: after the predictor "
        "trains\n(one conflict), the counter block is tracked "
        "symbolically and every\ntransaction repairs its increments "
        "against the commit-time value."
    )


if __name__ == "__main__":
    main()
