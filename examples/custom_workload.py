#!/usr/bin/env python
"""Modeling your own workload: a shared latency histogram.

This example shows the full public API surface a user needs to study
their own data structure under the simulated HTM systems:

1. lay out memory with :class:`BumpAllocator` / :class:`MainMemory`;
2. write transaction programs with :class:`Assembler`;
3. run them on a :class:`Machine` with any TM system;
4. inspect statistics and verify final memory.

The workload: worker threads record request latencies into a shared
histogram (one counter per bucket, plus a global total).  Histogram
bumps are classic auxiliary data — RETCON repairs them; the eager
baseline serializes on the hot 'total' counter.

Run:  python examples/custom_workload.py
"""

from repro.isa.instructions import Cond
from repro.isa.program import Assembler
from repro.isa.registers import R1, R2
from repro.mem.allocator import BumpAllocator
from repro.mem.memory import MainMemory
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.script import ThreadScript
from repro.workloads.base import make_rng

NBUCKETS = 8
NCORES = 8
SAMPLES_PER_THREAD = 30
SLO_LIMIT = 120  # latencies above this also bump a violations counter


def build_workload(seed: int = 7):
    memory = MainMemory()
    alloc = BumpAllocator()
    rng = make_rng(seed)

    bucket_addrs = [alloc.alloc(8) for _ in range(NBUCKETS)]
    total_addr = alloc.alloc_block(16)
    violations_addr = total_addr + 8
    for addr in bucket_addrs + [total_addr, violations_addr]:
        memory.write(addr, 0)

    expected = {addr: 0 for addr in bucket_addrs}
    expected[total_addr] = 0
    expected[violations_addr] = 0

    scripts = []
    for _core in range(NCORES):
        script = ThreadScript()
        for _ in range(SAMPLES_PER_THREAD):
            latency = rng.randrange(10, 200)
            bucket = bucket_addrs[min(latency // 25, NBUCKETS - 1)]

            asm = Assembler()
            asm.nop(80)  # handle the request itself
            # histogram[bucket] += 1
            asm.load(R1, bucket)
            asm.addi(R1, R1, 1)
            asm.store(R1, bucket)
            # total += 1, and branch on it: RETCON records the branch
            # as an interval constraint on the total.
            asm.load(R2, total_addr)
            asm.addi(R2, R2, 1)
            asm.store(R2, total_addr)
            done = asm.fresh_label("done")
            asm.br(Cond.LE, R2, 10**9, done)  # overflow guard (biased)
            asm.store(0, total_addr)
            asm.mark(done)
            if latency > SLO_LIMIT:
                asm.load(R1, violations_addr)
                asm.addi(R1, R1, 1)
                asm.store(R1, violations_addr)
                expected[violations_addr] += 1
            script.add_txn(asm.build())
            script.add_work(25)

            expected[bucket] += 1
            expected[total_addr] += 1
        scripts.append(script)
    return memory, scripts, expected


def main() -> None:
    print(f"{NCORES} workers x {SAMPLES_PER_THREAD} histogram updates")
    for system in ("eager", "retcon"):
        memory, scripts, expected = build_workload()
        machine = Machine(
            MachineConfig().with_cores(NCORES), system, scripts, memory
        )
        result = machine.run()
        for addr, count in expected.items():
            actual = memory.read(addr)
            assert actual == count, (
                f"{system}: bucket @{addr:#x} holds {actual}, "
                f"expected {count}"
            )
        print(
            f"  {system:8s}: {result.cycles:7d} cycles, "
            f"{result.aborts:3d} aborts, histogram exact"
        )
    print("\nAdapt build_workload() to model your own structure.")


if __name__ == "__main__":
    main()
