#!/usr/bin/env python
"""The paper's headline result: GIL-elided cpython under RETCON.

``python_opt`` models the reference Python interpreter with the global
interpreter lock speculatively elided: every transaction interprets a
block of bytecodes, incref'ing/decref'ing hot shared objects (None,
True, small ints — Zipf-distributed).  The reference counts are "a
true data conflict" for every HTM, but they are pure load/add/store
chains — exactly what RETCON repairs.

This example uses the high-level workload API and prints the paper's
comparison: no scaling on eager/lazy-vb, near-linear under RETCON.

Run:  python examples/refcount_interpreter.py [ncores] [scale]
"""

import sys

from repro.sim.runner import generate_and_baseline, run_workload


def main() -> None:
    ncores = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    print(f"python_opt on {ncores} cores (scale={scale})")
    print(f"{'system':10s} {'speedup':>8s} {'aborts':>7s} "
          f"{'conflict%':>9s} {'refcounts':>10s}")
    _, seq_cycles = generate_and_baseline(
        "python_opt", ncores=ncores, scale=scale
    )
    for system in ("eager", "lazy-vb", "retcon"):
        result = run_workload(
            "python_opt",
            system,
            ncores=ncores,
            scale=scale,
            seq_cycles=seq_cycles,
        )
        refcounts = "exact" if result.invariants_ok else "BROKEN"
        print(
            f"{system:10s} {result.speedup:7.1f}x "
            f"{result.aborts:7d} "
            f"{100 * result.breakdown['conflict']:8.1f}% "
            f"{refcounts:>10s}"
        )
    print(
        "\nEvery incref/decref is repaired against the commit-time "
        "refcount,\nso transactions that share None/True/small-ints "
        "commit concurrently\nand the final counts are still exact."
    )


if __name__ == "__main__":
    main()
