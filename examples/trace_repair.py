#!/usr/bin/env python
"""Watching RETCON work: tracing steals and repairs.

Attaches a :class:`repro.obs.events.EventStream` to a RETCON machine
running
contended counter transactions and prints the event stream — begins,
steals (a writer invalidating a tracked block), commit-time repairs,
and the one predictor-training abort.

Run:  python examples/trace_repair.py
"""

from repro.isa.program import Assembler
from repro.isa.registers import R1
from repro.mem.memory import MainMemory
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.script import ThreadScript
from repro.obs.events import EventStream

COUNTER = 4096


def main() -> None:
    memory = MainMemory()
    memory.write(COUNTER, 0)

    scripts = []
    for _core in range(2):
        script = ThreadScript()
        for _ in range(3):
            asm = Assembler()
            asm.load(R1, COUNTER)
            asm.addi(R1, R1, 1)
            asm.store(R1, COUNTER)
            asm.nop(15)
            script.add_txn(asm.build())
            script.add_work(5)
        scripts.append(script)

    machine = Machine(
        MachineConfig().with_cores(2), "retcon", scripts, memory
    )
    tracer = EventStream()
    machine.system.tracer = tracer
    machine.run()

    print("event stream:")
    for event in tracer:
        print(f"  {event}")
    print(f"\nsummary: {tracer.summary()}")
    print(f"final counter: {memory.read(COUNTER)} (expected 6)")
    assert memory.read(COUNTER) == 6


if __name__ == "__main__":
    main()
