#!/usr/bin/env python
"""The resizable-hashtable pattern (genome-sz / vacation_opt-sz).

Inserting *different* keys into a hashtable is conceptually parallel,
but a resizable table increments a shared ``size`` field and checks it
against a threshold on every insert.  That one counter serializes an
eager HTM; RETCON tracks it symbolically, folds each increment into a
``(address, delta)`` pair, records the resize check as an interval
constraint, and repairs at commit.

This example builds the real chained hashtable in simulated memory,
runs the same insert workload under the three systems at several core
counts, and verifies the table afterwards (every node reachable, size
field exact).

Run:  python examples/hashtable_resizing.py
"""

from repro.isa.program import Assembler
from repro.mem.allocator import BumpAllocator
from repro.mem.memory import MainMemory
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.script import ThreadScript, concatenate
from repro.workloads.base import make_rng
from repro.workloads.structures import SimHashTable

INSERTS_PER_THREAD = 30
SYSTEMS = ("eager", "lazy-vb", "retcon")
CORE_COUNTS = (1, 4, 16)


def build(ncores: int, seed: int = 1):
    memory = MainMemory()
    alloc = BumpAllocator()
    rng = make_rng(seed)
    total = ncores * INSERTS_PER_THREAD
    table = SimHashTable(
        memory,
        alloc,
        nbuckets=64,
        resizable=True,
        initial_threshold=max(8, total // 4),
    )
    scripts = []
    for _ in range(ncores):
        script = ThreadScript()
        for _ in range(INSERTS_PER_THREAD):
            asm = Assembler()
            asm.nop(150)  # compute the segment before touching the table
            table.emit_insert(asm, rng.randrange(1 << 30))
            script.add_txn(asm.build())
            script.add_work(40)
        scripts.append(script)
    return memory, scripts, table


def main() -> None:
    header = f"{'cores':>5s} " + " ".join(
        f"{system:>10s}" for system in SYSTEMS
    )
    print("Speedup over sequential (hashtable size field contended):")
    print(header)
    for ncores in CORE_COUNTS:
        # Sequential baseline: same work on one core.
        memory, scripts, _ = build(ncores)
        seq_machine = Machine(
            MachineConfig().with_cores(1),
            "eager",
            [concatenate(scripts)],
            memory.clone(),
        )
        seq = seq_machine.run().cycles

        row = [f"{ncores:5d}"]
        for system in SYSTEMS:
            memory, scripts, table = build(ncores)
            machine = Machine(
                MachineConfig().with_cores(ncores),
                system,
                scripts,
                memory,
            )
            result = machine.run()
            ok, detail = table.validate(memory)
            assert ok, f"{system}: {detail}"
            row.append(f"{seq / result.cycles:9.1f}x")
        print(" ".join(row))
    print(
        "\nAll three systems keep the table exact (validated); only "
        "RETCON\nkeeps scaling once the size field becomes the "
        "bottleneck."
    )


if __name__ == "__main__":
    main()
